//! Table 5: model quantization and entropy coding — L1 vs L2 Q-format
//! search, fine-tuning recovery, compression ratio and parameter memory.

use ecnn_bench::{bench_scale, section};
use ecnn_isa::compile::compile;
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_nn::data::TaskKind;
use ecnn_nn::pipeline::{polish, quantize_only, quantize_stage};
use ecnn_nn::quant::QuantConfig;
use ecnn_nn::schedule::repro_stages;
use ecnn_tensor::qformat::NormOrder;

fn main() {
    let stages = repro_stages(bench_scale());
    let spec = ErNetSpec::new(ErNetTask::Dn, 2, 1, 0);
    let task = TaskKind::denoise25();

    section("Table 5: quantization and entropy coding (DnERNet-B2R1N0)");
    let (mut fm, float_psnr) = polish(spec, task, &stages[1], 21);
    println!("float model: {float_psnr:.2} dB");

    for norm in [NormOrder::L1, NormOrder::L2] {
        let (_, p) = quantize_only(
            &fm,
            spec,
            task,
            stages[1].patch,
            QuantConfig {
                norm,
                ..Default::default()
            },
            21,
        );
        println!(
            "  {norm:?}-norm 8-bit, no fine-tune: {p:.2} dB (drop {:.2})",
            float_psnr - p
        );
    }

    let (qm, tuned) = quantize_stage(&mut fm, spec, task, &stages[2], QuantConfig::default(), 21);
    println!(
        "  L1-norm 8-bit + fine-tune:   {tuned:.2} dB (drop {:.2})",
        float_psnr - tuned
    );
    println!("(paper: up to 3.69 dB initial loss; 0.05-0.14 dB after fine-tuning)");

    let c = compile(&qm, 128).expect("compiles");
    println!("\nentropy coding (trained weights):");
    println!(
        "  shannon limit : {:.2} bits/coeff",
        c.packed.stats.shannon_bits
    );
    println!(
        "  encoded       : {:.2} bits/coeff",
        c.packed.stats.encoded_bits
    );
    println!(
        "  compression   : {:.2}x (paper: 1.1-1.5x)",
        c.packed.stats.compression_ratio
    );
    println!(
        "  parameter mem : {} KB of 1288 KB {}",
        c.packed.total_bytes() / 1024,
        if c.packed.total_bytes() <= 1288 * 1024 {
            "(fits)"
        } else {
            "(OVERFLOW)"
        }
    );

    // Per-layer Q-formats, as Table 5 lists.
    println!("\nfitted Q-formats per layer:");
    for (i, p) in qm.layers.iter().enumerate() {
        if let Some(p) = p {
            println!(
                "  layer {i}: w={} b={} out={} mid={}",
                p.w3_q, p.b3_q, p.out_q, p.mid_q
            );
        }
    }
}
