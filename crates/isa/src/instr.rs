//! FBISA instructions: opcodes, operands and attributes (Fig. 10, Table 1).

use ecnn_model::layer::PoolKind;
use ecnn_model::model::InferenceKind;
use ecnn_tensor::QFormat;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum leaf-modules one instruction may carry (Table 1). This is also
/// what caps the ERModule expansion ratio at `RE ≤ 4`.
pub const MAX_LEAF_MODULES: usize = 4;

/// Leaf-module channel width.
pub const LEAF_CH: usize = 32;

/// Output-tile geometry of the datapath: one cycle computes a 4×2-pixel,
/// 32-channel tile per leaf-module.
pub const TILE_W: usize = 4;
/// See [`TILE_W`].
pub const TILE_H: usize = 2;

/// FBISA opcodes (Table 1). `CONV1` is this implementation's name for the
/// 1×1-only variant used by classifier heads; the paper's `ER` opcode
/// already routes through the LCONV1×1 engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    /// Plain CONV3×3 on up to four leaf-modules; partial sums over input
    /// groups accumulate on-the-fly.
    Conv,
    /// ERModule: per leaf, CONV3×3 (one 32ch expansion plane) feeding a
    /// CONV1×1 reduction, plus the module residual via `srcS`.
    Er,
    /// CONV3×3 whose four output groups are written in pixel-shuffle order:
    /// 128ch at 1× becomes 32ch at 2× (sub-pixel upsampling).
    Upx2,
    /// CONV3×3 followed by strided or max ×2 downsampling on write.
    Dnx2,
    /// CONV1×1 only (runs on the LCONV1×1 engine).
    Conv1,
}

impl Opcode {
    /// Mnemonic used by the assembly printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Conv => "CONV",
            Opcode::Er => "ER",
            Opcode::Upx2 => "UPX2",
            Opcode::Dnx2 => "DNX2",
            Opcode::Conv1 => "CONV1",
        }
    }

    /// Whether the opcode's leaf-modules include a 3×3 stage.
    pub fn has_conv3x3(self) -> bool {
        !matches!(self, Opcode::Conv1)
    }

    /// Whether the opcode's leaf-modules include a 1×1 stage.
    pub fn has_conv1x1(self) -> bool {
        matches!(self, Opcode::Er | Opcode::Conv1)
    }
}

/// A feature operand: where a block of features lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatLoc {
    /// One of the three on-chip block buffers, addressed by buffer id and a
    /// 32-channel group offset (wide features span several groups).
    Bb {
        /// Buffer index (0..3 on eCNN).
        id: u8,
        /// First 32-channel group inside the buffer.
        group: u8,
    },
    /// The data-input virtual block buffer (a FIFO from DRAM/DMA).
    Di {
        /// 32-channel group within the streamed input.
        group: u8,
    },
    /// The data-output virtual block buffer (a FIFO to DRAM/DMA).
    Do {
        /// 32-channel group within the streamed output.
        group: u8,
    },
}

impl FeatLoc {
    /// Block buffer `id`, group 0.
    pub fn bb(id: u8) -> Self {
        FeatLoc::Bb { id, group: 0 }
    }

    /// The DI stream, group 0.
    pub fn di() -> Self {
        FeatLoc::Di { group: 0 }
    }

    /// The DO stream, group 0.
    pub fn dout() -> Self {
        FeatLoc::Do { group: 0 }
    }

    /// True for the virtual FIFO buffers.
    pub fn is_virtual(self) -> bool {
        matches!(self, FeatLoc::Di { .. } | FeatLoc::Do { .. })
    }

    /// The same location shifted by `delta` 32-channel groups.
    #[must_use]
    pub fn offset(self, delta: usize) -> Self {
        match self {
            FeatLoc::Bb { id, group } => FeatLoc::Bb {
                id,
                group: group + delta as u8,
            },
            FeatLoc::Di { group } => FeatLoc::Di {
                group: group + delta as u8,
            },
            FeatLoc::Do { group } => FeatLoc::Do {
                group: group + delta as u8,
            },
        }
    }
}

impl fmt::Display for FeatLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FeatLoc::Bb { id, group: 0 } => write!(f, "BB{id}"),
            FeatLoc::Bb { id, group } => write!(f, "BB{id}.g{group}"),
            FeatLoc::Di { group: 0 } => write!(f, "DI"),
            FeatLoc::Di { group } => write!(f, "DI.g{group}"),
            FeatLoc::Do { group: 0 } => write!(f, "DO"),
            FeatLoc::Do { group } => write!(f, "DO.g{group}"),
        }
    }
}

/// Q-format attributes of one instruction (Fig. 10's operand attributes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QSpec {
    /// Source feature format.
    pub src: QFormat,
    /// Destination feature format.
    pub dst: QFormat,
    /// Supplementary-source format (residual / partial sums), if used.
    pub src_s: Option<QFormat>,
    /// Intermediate expanded-feature format between the 3×3 and 1×1 stages
    /// of an `ER` leaf (quantized inside LCONV3×3 to save LCONV1×1 area).
    pub mid: Option<QFormat>,
    /// 3×3 weight format.
    pub w3: QFormat,
    /// 3×3 bias format.
    pub b3: QFormat,
    /// 1×1 weight format (`ER`/`CONV1`).
    pub w1: Option<QFormat>,
    /// 1×1 bias format (`ER`/`CONV1`).
    pub b1: Option<QFormat>,
}

/// One FBISA instruction: a whole-block convolution task.
///
/// Spatial sizes are stored explicitly (the hardware derives them from the
/// opcode's block-size attribute in 4×2-tile units; we keep pixels for
/// clarity and expose tile counts via [`Instruction::compute_tiles`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    /// The opcode.
    pub opcode: Opcode,
    /// Valid (truncated-pyramid) or zero-padded convolution.
    pub inference: InferenceKind,
    /// Main source operand.
    pub src: FeatLoc,
    /// Main destination operand.
    pub dst: FeatLoc,
    /// Supplementary source accumulated into the output (residuals,
    /// cross-instruction partial sums).
    pub src_s: Option<FeatLoc>,
    /// Number of 32-channel input groups read from `src`.
    pub in_groups: usize,
    /// Number of 32-channel output groups the convolution produces. For
    /// `UPX2` this is the *pre-shuffle* group count (4 for a 32→128
    /// upsampler, whose shuffled destination occupies a single group).
    pub out_groups: usize,
    /// ER expansion ratio `Rm` (1 for non-ER opcodes).
    pub expansion: usize,
    /// Input block size in pixels (width, height) at the source resolution.
    pub in_size: (usize, usize),
    /// Output block size in pixels at the destination resolution (after any
    /// shuffle/pool reorder).
    pub out_size: (usize, usize),
    /// Apply ReLU before requantization.
    pub relu: bool,
    /// Downsampling flavour for `DNX2`.
    pub pool: Option<PoolKind>,
    /// Downsampling factor on write (1 = none; 2 for DNX2; consecutive model
    /// pools fold multiplicatively).
    pub pool_factor: usize,
    /// Q-format attributes.
    pub q: QSpec,
    /// Parameter-operand restart attribute: leaf-module index into the bias
    /// bitstream where this instruction's parameters begin (byte-aligned;
    /// weight streams restart at 8× the byte address — Section 5.2).
    pub param_restart: u32,
    /// Which model layer produced this instruction (for traceability).
    pub layer: usize,
}

impl Instruction {
    /// Total leaf-modules in this instruction.
    ///
    /// * `CONV`/`UPX2`/`DNX2`: one 32→32 CONV3×3 leaf per (input group ×
    ///   output group) pair.
    /// * `ER`: one leaf per expansion plane (`Rm`).
    /// * `CONV1`: one 32→32 CONV1×1 leaf per (input × output) group pair.
    pub fn leaf_modules(&self) -> usize {
        match self.opcode {
            Opcode::Er => self.expansion,
            _ => self.in_groups * self.out_groups,
        }
    }

    /// Spatial size of the convolution output *before* shuffle/pool reorder
    /// (the grid the engines actually sweep).
    pub fn conv_out_size(&self) -> (usize, usize) {
        match self.opcode {
            Opcode::Upx2 => (self.out_size.0 / 2, self.out_size.1 / 2),
            Opcode::Dnx2 => (
                self.out_size.0 * self.pool_factor,
                self.out_size.1 * self.pool_factor,
            ),
            _ => self.out_size,
        }
    }

    /// Number of 4×2 output tiles the CIU sweeps for this instruction.
    pub fn compute_tiles(&self) -> usize {
        let (w, h) = self.conv_out_size();
        w.div_ceil(TILE_W) * h.div_ceil(TILE_H)
    }

    /// CIU busy cycles: one cycle per tile per leaf-module (Section 6.1.1).
    pub fn ciu_cycles(&self) -> u64 {
        (self.compute_tiles() * self.leaf_modules()) as u64
    }

    /// IDU decode cycles: 256 per leaf-module (each of the 18+2 parallel
    /// decoders emits 2 weights/cycle; 512 coefficients per stream per leaf).
    pub fn idu_cycles(&self) -> u64 {
        (256 * self.leaf_modules()) as u64
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated invariant.
    pub fn check(&self) -> Result<(), String> {
        if self.leaf_modules() == 0 {
            return Err("instruction has no leaf-modules".into());
        }
        if self.leaf_modules() > MAX_LEAF_MODULES {
            return Err(format!(
                "{} leaf-modules exceeds the maximum of {MAX_LEAF_MODULES}",
                self.leaf_modules()
            ));
        }
        if self.opcode == Opcode::Er && (self.in_groups != 1 || self.out_groups != 1) {
            return Err("ER operates on a single 32ch group".into());
        }
        if self.src_s.is_none() && self.q.src_s.is_some() {
            return Err("srcS format given without srcS operand".into());
        }
        if self.opcode.has_conv1x1() != self.q.w1.is_some() {
            return Err("1x1 weight format presence must match opcode".into());
        }
        if self.pool.is_some() != (self.opcode == Opcode::Dnx2) {
            return Err("pool attribute is exclusive to DNX2".into());
        }
        if self.out_size.0 == 0 || self.out_size.1 == 0 {
            return Err("empty output block".into());
        }
        Ok(())
    }
}

impl fmt::Display for Instruction {
    /// Named-operand assembly in the spirit of Fig. 18, e.g.
    ///
    /// ```text
    /// ER    src=BB0 dst=BB1 srcS=BB0 blk=29x15t Rm=2 q(src=Q5,dst=Q5,w=Q7) par@8
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<5} src={} dst={}",
            self.opcode.mnemonic(),
            self.src,
            self.dst
        )?;
        if let Some(s) = self.src_s {
            write!(f, " srcS={s}")?;
        }
        let (w, h) = self.conv_out_size();
        write!(f, " blk={}x{}t", w.div_ceil(TILE_W), h.div_ceil(TILE_H))?;
        match self.opcode {
            Opcode::Er => write!(f, " Rm={}", self.expansion)?,
            _ => {
                if self.in_groups > 1 || self.out_groups > 1 {
                    write!(f, " g={}i{}o", self.in_groups, self.out_groups)?;
                }
            }
        }
        if self.relu {
            write!(f, " relu")?;
        }
        if let Some(p) = self.pool {
            write!(f, " pool={p:?}x{}", self.pool_factor)?;
        }
        write!(f, " q(src={},dst={}", self.q.src, self.q.dst)?;
        if let Some(m) = self.q.mid {
            write!(f, ",mid={m}")?;
        }
        write!(f, ",w={}", self.q.w3)?;
        if let Some(w1) = self.q.w1 {
            write!(f, ",w1={w1}")?;
        }
        write!(f, ") par@{}", self.param_restart)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_instr() -> Instruction {
        Instruction {
            opcode: Opcode::Conv,
            inference: InferenceKind::TruncatedPyramid,
            src: FeatLoc::di(),
            dst: FeatLoc::bb(0),
            src_s: None,
            in_groups: 1,
            out_groups: 1,
            expansion: 1,
            in_size: (128, 128),
            out_size: (126, 126),
            relu: false,
            pool: None,
            pool_factor: 1,
            q: QSpec {
                src: QFormat::unsigned(8),
                dst: QFormat::signed(5),
                src_s: None,
                mid: None,
                w3: QFormat::signed(7),
                b3: QFormat::signed(7),
                w1: None,
                b1: None,
            },
            param_restart: 0,
            layer: 0,
        }
    }

    #[test]
    fn tile_counts() {
        let i = base_instr();
        assert_eq!(i.compute_tiles(), 32 * 63); // ceil(126/4) x ceil(126/2)
        assert_eq!(i.ciu_cycles(), 32 * 63);
        assert_eq!(i.idu_cycles(), 256);
    }

    #[test]
    fn er_leaf_count_is_expansion() {
        let mut i = base_instr();
        i.opcode = Opcode::Er;
        i.expansion = 3;
        i.src_s = Some(FeatLoc::bb(0));
        i.q.src_s = Some(i.q.src);
        i.q.mid = Some(QFormat::unsigned(5));
        i.q.w1 = Some(QFormat::signed(7));
        i.q.b1 = Some(QFormat::signed(7));
        assert_eq!(i.leaf_modules(), 3);
        assert_eq!(i.ciu_cycles(), 3 * 32 * 63);
        i.check().unwrap();
    }

    #[test]
    fn wide_conv_leaf_count() {
        let mut i = base_instr();
        i.in_groups = 2;
        i.out_groups = 2;
        assert_eq!(i.leaf_modules(), 4);
        i.check().unwrap();
        i.in_groups = 3;
        assert!(i.check().is_err(), "6 leafs must be rejected");
    }

    #[test]
    fn upx2_conv_grid_is_pre_shuffle() {
        let mut i = base_instr();
        i.opcode = Opcode::Upx2;
        i.in_groups = 1;
        i.out_groups = 4; // 32 -> 128 pre-shuffle
        i.expansion = 1;
        i.in_size = (64, 64);
        i.out_size = (124, 124); // 62x62 conv output shuffled x2
        assert_eq!(i.conv_out_size(), (62, 62));
        assert_eq!(i.leaf_modules(), 4);
        assert_eq!(i.compute_tiles(), 16 * 31);
        i.check().unwrap();
    }

    #[test]
    fn dnx2_conv_grid_is_pre_pool() {
        let mut i = base_instr();
        i.opcode = Opcode::Dnx2;
        i.pool = Some(PoolKind::Max);
        i.pool_factor = 2;
        i.in_size = (64, 64);
        i.out_size = (31, 31);
        assert_eq!(i.conv_out_size(), (62, 62));
        i.check().unwrap();
    }

    #[test]
    fn check_catches_missing_formats() {
        let mut i = base_instr();
        i.src_s = None;
        i.q.src_s = Some(QFormat::signed(5));
        assert!(i.check().is_err());
        let mut i = base_instr();
        i.q.w1 = Some(QFormat::signed(7));
        assert!(i.check().is_err(), "CONV must not carry 1x1 formats");
    }

    #[test]
    fn display_contains_named_operands() {
        let i = base_instr();
        let s = i.to_string();
        assert!(s.starts_with("CONV"));
        assert!(s.contains("src=DI"));
        assert!(s.contains("dst=BB0"));
        assert!(s.contains("blk=32x63t"));
        assert!(s.contains("q(src=UQ8,dst=Q5,w=Q7)"));
    }
}
