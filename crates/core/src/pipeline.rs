//! Legacy entry points kept as thin shims over [`crate::engine`].
//!
//! [`Accelerator`] / [`Deployment`] predate the unified [`Engine`] API and
//! remain only so existing callers keep compiling; new code should use
//! [`Engine::builder`] (see the crate-level example).

// The shims intentionally call their own deprecated surface.
#![allow(deprecated)]

use crate::engine::{Engine, EngineError};
use crate::report::SystemReport;
use ecnn_dram::DramPowerModel;
use ecnn_isa::compile::{CompileError, CompiledProgram};
use ecnn_isa::params::QuantizedModel;
use ecnn_model::{Model, RealTimeSpec};
use ecnn_sim::cost::PowerModel;
use ecnn_sim::exec::ExecError;
use ecnn_sim::EcnnConfig;
use ecnn_tensor::Tensor;
use std::fmt;

pub use crate::engine::{ImageMismatch, ImageRunStats};

/// Pipeline errors (the legacy subset of [`EngineError`], plus a lossless
/// carrier for everything newer).
#[derive(Clone, Debug, PartialEq)]
pub enum PipelineError {
    /// Compilation failed.
    Compile(CompileError),
    /// Block execution failed (simulator invariant violation).
    Exec(ExecError),
    /// The image cannot be processed by this deployment.
    Image(ImageMismatch),
    /// Any engine error outside the legacy subset (builder, capability or
    /// sharded-worker failures — the latter carry the failing shard and
    /// block index), passed through losslessly.
    Engine(Box<EngineError>),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Compile(e) => write!(f, "compile: {e}"),
            PipelineError::Exec(e) => write!(f, "execute: {e}"),
            PipelineError::Image(m) => write!(f, "image: {m}"),
            PipelineError::Engine(e) => write!(f, "engine: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Compile(e) => Some(e),
            PipelineError::Exec(e) => Some(e),
            PipelineError::Image(_) => None,
            PipelineError::Engine(e) => Some(&**e),
        }
    }
}

impl From<CompileError> for PipelineError {
    fn from(e: CompileError) -> Self {
        PipelineError::Compile(e)
    }
}

impl From<ExecError> for PipelineError {
    fn from(e: ExecError) -> Self {
        PipelineError::Exec(e)
    }
}

impl From<EngineError> for PipelineError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Compile(c) => PipelineError::Compile(c),
            EngineError::Exec(x) => PipelineError::Exec(x),
            EngineError::Image(m) => PipelineError::Image(m),
            // Builder/capability/sharded errors have no legacy twin; carry
            // them whole so shard + block context survives the conversion.
            other => PipelineError::Engine(Box::new(other)),
        }
    }
}

impl From<PipelineError> for EngineError {
    fn from(e: PipelineError) -> Self {
        match e {
            PipelineError::Compile(c) => EngineError::Compile(c),
            PipelineError::Exec(x) => EngineError::Exec(x),
            PipelineError::Image(m) => EngineError::Image(m),
            PipelineError::Engine(e) => *e,
        }
    }
}

/// An eCNN machine instance.
///
/// # Example
///
/// ```
/// use ecnn_core::Accelerator;
/// use ecnn_isa::params::QuantizedModel;
/// use ecnn_model::ernet::{ErNetSpec, ErNetTask};
/// use ecnn_model::RealTimeSpec;
///
/// let model = ErNetSpec::new(ErNetTask::Dn, 3, 1, 0).build().unwrap();
/// let qm = QuantizedModel::uniform(&model);
/// let acc = Accelerator::paper();
/// let dep = acc.deploy(&qm, 128).unwrap();
/// let report = dep.system_report(RealTimeSpec::UHD30);
/// assert!(report.frame.fps >= 30.0);
/// ```
#[deprecated(since = "0.1.0", note = "use `Engine::builder()` instead")]
#[derive(Clone, Debug)]
pub struct Accelerator {
    config: EcnnConfig,
    power: PowerModel,
    dram_power: DramPowerModel,
}

impl Accelerator {
    /// The paper's configuration (Table 2 + Table 6 calibration).
    pub fn paper() -> Self {
        Self {
            config: EcnnConfig::paper(),
            power: PowerModel::paper_40nm(),
            dram_power: DramPowerModel::DDR4_3200,
        }
    }

    /// Custom configuration.
    #[deprecated(
        since = "0.1.0",
        note = "use `Engine::builder().machine(..).power(..).dram_power(..)` instead"
    )]
    pub fn new(config: EcnnConfig, power: PowerModel, dram_power: DramPowerModel) -> Self {
        Self {
            config,
            power,
            dram_power,
        }
    }

    /// Machine configuration.
    pub fn config(&self) -> &EcnnConfig {
        &self.config
    }

    /// Compiles `qm` for input blocks of side `xi` and returns a runnable
    /// deployment.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] for infeasible geometry.
    pub fn deploy(&self, qm: &QuantizedModel, xi: usize) -> Result<Deployment, PipelineError> {
        let engine = Engine::builder()
            .quantized(qm.clone())
            .block(xi)
            .machine(self.config)
            .power(self.power)
            .dram_power(self.dram_power)
            .build()
            .map_err(PipelineError::from)?;
        Ok(Deployment { engine })
    }
}

/// A compiled model bound to a machine (thin wrapper over [`Engine`]).
#[deprecated(
    since = "0.1.0",
    note = "use `Engine` (via `Engine::builder()`) instead"
)]
#[derive(Clone, Debug)]
pub struct Deployment {
    engine: Engine,
}

impl Deployment {
    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The compiled program.
    pub fn compiled(&self) -> &CompiledProgram {
        self.engine.compiled()
    }

    /// The source model.
    pub fn model(&self) -> &Model {
        self.engine.model()
    }

    /// Runs a whole image through the block pipeline; see
    /// [`Engine::run_image`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Image`] for channel mismatches and
    /// propagates simulator errors.
    pub fn run_image(
        &self,
        image: &Tensor<f32>,
    ) -> Result<(Tensor<f32>, ImageRunStats), PipelineError> {
        self.engine.run_image(image).map_err(PipelineError::from)
    }

    /// Frame-level timing / traffic / power report at a real-time spec's
    /// resolution.
    pub fn system_report(&self, spec: RealTimeSpec) -> SystemReport {
        self.engine.system_report_at(spec)
    }

    /// The quantized model this deployment was built from.
    pub fn quantized_model(&self) -> &QuantizedModel {
        self.engine.quantized_model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecnn_model::ernet::{ErNetSpec, ErNetTask};
    use ecnn_model::model::InferenceKind;
    use ecnn_nn::quant::fixed_forward;
    use ecnn_tensor::{ImageKind, SyntheticImage};

    fn deploy(task: ErNetTask, b: usize, r: usize, n: usize, xi: usize) -> Deployment {
        let m = ErNetSpec::new(task, b, r, n).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        Accelerator::paper().deploy(&qm, xi).unwrap()
    }

    #[test]
    fn stitched_image_matches_whole_frame_reference_bit_exactly() {
        // The block flow with recomputed overlaps must equal running the
        // fixed-point reference on the zero-extended whole frame (valid
        // convolutions) — the paper's equivalence claim for block-based
        // inference.
        let dep = deploy(ErNetTask::Dn, 2, 1, 0, 40);
        let img = SyntheticImage::new(ImageKind::Mixed, 31).rgb(56, 56);
        let (out, stats) = dep.run_image(&img).unwrap();
        assert_eq!(out.shape(), (3, 56, 56));
        assert!(stats.blocks > 1, "must exercise stitching");

        // Reference: zero-extend by the receptive border (5 convs -> 5 px),
        // then valid fixed-point forward.
        let p = &dep.compiled().program;
        let border = (p.di_side - p.do_side) / 2;
        let qm = dep.quantized_model();
        let ext = img.crop_padded(
            -(border as isize),
            -(border as isize),
            56 + 2 * border,
            56 + 2 * border,
        );
        let codes = ext.map(|v| qm.input_q.quantize(v));
        let ref_out = fixed_forward(qm, &codes);
        assert_eq!(ref_out.shape(), (3, 56, 56));
        let out_q = qm.layers.iter().rev().flatten().next().unwrap().out_q;
        let ref_f = ref_out.map(|c| out_q.dequantize(c).clamp(0.0, 1.0));
        for c in 0..3 {
            for y in 0..56 {
                for x in 0..56 {
                    assert_eq!(
                        out.at(c, y, x),
                        ref_f.at(c, y, x),
                        "mismatch at ({c},{y},{x})"
                    );
                }
            }
        }
    }

    #[test]
    fn sr_image_is_upscaled() {
        let dep = deploy(ErNetTask::Sr2, 2, 1, 0, 32);
        let img = SyntheticImage::new(ImageKind::Smooth, 5).rgb(48, 48);
        let (out, _) = dep.run_image(&img).unwrap();
        assert_eq!(out.shape(), (3, 96, 96));
    }

    #[test]
    fn system_report_dnernet_uhd30() {
        let dep = deploy(ErNetTask::Dn, 3, 1, 0, 128);
        let r = dep.system_report(RealTimeSpec::UHD30);
        assert!(r.meets_realtime, "fps {}", r.frame.fps);
        assert_eq!(r.dram_config.unwrap().name, "DDR-400");
        assert!(r.power.total_w() > 5.0 && r.power.total_w() < 8.5);
        assert!(r.dram_power.dynamic_mw() < 150.0);
    }

    #[test]
    fn channel_mismatch_is_reported() {
        let dep = deploy(ErNetTask::Dn, 1, 1, 0, 32);
        let gray = Tensor::<f32>::zeros(1, 32, 32);
        match dep.run_image(&gray) {
            Err(PipelineError::Image(m)) => {
                assert_eq!(m.channels, 1);
                assert_eq!(m.expected_channels, 3);
            }
            other => panic!("expected image mismatch, got {other:?}"),
        }
    }

    #[test]
    fn zero_padded_models_deploy_at_frame_size() {
        let m = ecnn_model::zoo::recognition(10);
        let qm = QuantizedModel::uniform(&m);
        let dep = Accelerator::paper().deploy(&qm, 224).unwrap();
        assert_eq!(dep.compiled().program.inference, InferenceKind::ZeroPadded);
        assert_eq!(dep.compiled().program.do_side, 1);
        // Wide features exceed the strict 3x512KB buffers: recorded, not
        // fatal (DESIGN.md §4).
        assert!(dep.compiled().program.bb_overflow);
    }
}
