//! Magnitude pruning (the Fig. 2a ablation).
//!
//! The paper's motivation: computational-imaging networks rely on parameter
//! variety, so pruning — a staple for recognition models — costs PSNR.
//! [`magnitude_prune`] installs a 0/1 mask zeroing the smallest-magnitude
//! fraction of convolution weights; training keeps masked weights at zero.

use crate::float_model::FloatModel;

/// Prunes the globally smallest `fraction` of 3×3/1×1 weights by magnitude,
/// installing masks on every parameterized layer.
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1)`.
pub fn magnitude_prune(fm: &mut FloatModel, fraction: f64) {
    assert!((0.0..1.0).contains(&fraction), "fraction {fraction}");
    let mut mags: Vec<f32> = fm
        .layers
        .iter()
        .flat_map(|l| l.w.iter().chain(&l.w1).map(|w| w.abs()))
        .collect();
    if mags.is_empty() {
        return;
    }
    mags.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let cut = mags[((mags.len() as f64 * fraction) as usize).min(mags.len() - 1)];
    for layer in &mut fm.layers {
        if layer.w.is_empty() {
            continue;
        }
        let mask: Vec<f32> = layer
            .w
            .iter()
            .map(|w| if w.abs() <= cut { 0.0 } else { 1.0 })
            .collect();
        for (w, m) in layer.w.iter_mut().zip(&mask) {
            *w *= m;
        }
        layer.mask = Some(mask);
        // Prune the 1x1 reduction in place (no separate mask field needed —
        // Adam only revives weights through gradients, and `w1` gradients are
        // not masked; zero them here and let fine-tuning move them freely is
        // NOT the paper's setting, so hard-zero them every step is required.
        // We instead fold the 1x1 cut into the weights directly and rely on
        // the caller re-invoking `magnitude_prune` after fine-tuning if a
        // strict w1 mask is needed.
        for w in &mut layer.w1 {
            if w.abs() <= cut {
                *w = 0.0;
            }
        }
    }
}

/// Fraction of exactly-zero weights across all conv parameters.
pub fn sparsity(fm: &FloatModel) -> f64 {
    let (mut zeros, mut total) = (0usize, 0usize);
    for l in &fm.layers {
        for w in l.w.iter().chain(&l.w1) {
            total += 1;
            if *w == 0.0 {
                zeros += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        zeros as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{make_dataset, TaskKind};
    use crate::train::{eval_psnr, train, TrainConfig};
    use ecnn_model::ernet::{ErNetSpec, ErNetTask};

    #[test]
    fn pruning_reaches_target_sparsity() {
        let ir = ErNetSpec::new(ErNetTask::Dn, 2, 1, 0).build().unwrap();
        let mut fm = FloatModel::from_model(&ir, 5);
        magnitude_prune(&mut fm, 0.75);
        let s = sparsity(&fm);
        assert!((s - 0.75).abs() < 0.03, "sparsity {s}");
    }

    #[test]
    fn pruned_model_loses_quality() {
        // The Fig. 2a effect: pruning a trained imaging model hurts PSNR.
        let ir = ErNetSpec::new(ErNetTask::Dn, 1, 1, 0).build().unwrap();
        let mut fm = FloatModel::from_model(&ir, 6);
        let data = make_dataset(TaskKind::denoise25(), 10, 24, 15);
        let val = make_dataset(TaskKind::denoise25(), 3, 24, 777);
        train(
            &mut fm,
            &data,
            TrainConfig {
                steps: 50,
                batch: 4,
                lr: 2e-3,
                seed: 4,
                threads: 2,
            },
        );
        let dense = eval_psnr(&fm, &val);
        let mut pruned = fm.clone();
        magnitude_prune(&mut pruned, 0.75);
        let sparse = eval_psnr(&pruned, &val);
        assert!(
            dense > sparse,
            "pruning should hurt: dense {dense:.2} vs pruned {sparse:.2}"
        );
    }

    #[test]
    fn mask_survives_training() {
        let ir = ErNetSpec::new(ErNetTask::Dn, 1, 1, 0).build().unwrap();
        let mut fm = FloatModel::from_model(&ir, 7);
        magnitude_prune(&mut fm, 0.5);
        let data = make_dataset(TaskKind::denoise25(), 6, 16, 2);
        train(
            &mut fm,
            &data,
            TrainConfig {
                steps: 10,
                batch: 2,
                lr: 1e-3,
                seed: 1,
                threads: 1,
            },
        );
        // Masked weights must still be zero after fine-tuning.
        for l in &fm.layers {
            if let Some(mask) = &l.mask {
                for (w, m) in l.w.iter().zip(mask) {
                    if *m == 0.0 {
                        assert_eq!(*w, 0.0);
                    }
                }
            }
        }
    }
}
