//! Area and power models calibrated to the paper's layout results
//! (Table 6: 55.23 mm², 6.94 W average on TSMC 40 nm at 250 MHz / 0.9 V).
//!
//! We cannot re-run Synopsys IC Compiler, so absolute constants are pinned
//! to the published totals and breakdown percentages; everything that
//! *varies across experiments* (engine busy fractions, SRAM activity, frame
//! times) comes from the cycle simulator. See DESIGN.md §4.

use crate::timing::FrameReport;
use serde::{Deserialize, Serialize};

/// Area breakdown in mm² (40 nm).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AreaReport {
    /// LCONV3×3 engine (65.8% of the paper total).
    pub lconv3_mm2: f64,
    /// LCONV1×1 engine (7.0%).
    pub lconv1_mm2: f64,
    /// Three block buffers (11.3%).
    pub block_buffers_mm2: f64,
    /// Parameter memories (7.9% at the 1288 KB baseline).
    pub param_memory_mm2: f64,
    /// IDU logic, datapath glue, pipeline registers (remainder).
    pub other_mm2: f64,
}

impl AreaReport {
    /// The paper's Table 6 breakdown, with the parameter memory scaled by
    /// `param_scale` (3.0 reproduces the 63.99 mm² recognition variant of
    /// Section 7.3).
    pub fn paper_40nm(param_scale: f64) -> Self {
        const TOTAL: f64 = 55.23;
        Self {
            lconv3_mm2: TOTAL * 0.658,
            lconv1_mm2: TOTAL * 0.070,
            block_buffers_mm2: TOTAL * 0.113,
            param_memory_mm2: TOTAL * 0.079 * param_scale,
            other_mm2: TOTAL * (1.0 - 0.658 - 0.070 - 0.113 - 0.079),
        }
    }

    /// Total area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.lconv3_mm2
            + self.lconv1_mm2
            + self.block_buffers_mm2
            + self.param_memory_mm2
            + self.other_mm2
    }
}

/// Power breakdown in watts for one workload.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// LCONV3×3 engine power (combinational datapath).
    pub lconv3_w: f64,
    /// LCONV1×1 engine power.
    pub lconv1_w: f64,
    /// Sequential power: locally-distributed parameter registers, 4×2-tile
    /// pipeline registers and clock tree (roughly constant while clocked).
    pub sequential_w: f64,
    /// SRAM power: block buffers + parameter memories.
    pub sram_w: f64,
}

impl PowerReport {
    /// Total power in watts.
    pub fn total_w(&self) -> f64 {
        self.lconv3_w + self.lconv1_w + self.sequential_w + self.sram_w
    }

    /// Combinational share (the engines' datapaths).
    pub fn combinational_w(&self) -> f64 {
        self.lconv3_w + self.lconv1_w
    }

    /// Fractional breakdown `(combinational, sequential, sram)` as plotted
    /// in Fig. 20 (right).
    pub fn circuit_fractions(&self) -> (f64, f64, f64) {
        let t = self.total_w();
        (
            self.combinational_w() / t,
            self.sequential_w / t,
            self.sram_w / t,
        )
    }
}

/// The calibrated power model.
///
/// `P = busy3 × P3 + busy1 × P1 + P_seq + sram_activity × P_sram`, with the
/// full-activity constants chosen so the paper's six polished ERNets average
/// 6.94 W and DnERNet lands near its 7.34 W figure.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// LCONV3×3 power at 100% busy (W).
    pub p3_full_w: f64,
    /// LCONV1×1 power at 100% busy (W).
    pub p1_full_w: f64,
    /// Sequential/clock power while running (W).
    pub p_seq_w: f64,
    /// SRAM power at nominal block-buffer activity (W).
    pub p_sram_w: f64,
}

impl PowerModel {
    /// Constants calibrated to Table 6 / Fig. 20 (see module docs).
    pub const fn paper_40nm() -> Self {
        Self {
            p3_full_w: 6.05,
            p1_full_w: 0.46,
            p_seq_w: 0.70,
            p_sram_w: 0.25,
        }
    }

    /// Evaluates the model for a simulated frame workload.
    pub fn evaluate(&self, frame: &FrameReport) -> PowerReport {
        PowerReport {
            lconv3_w: self.p3_full_w * frame.lconv3_busy,
            lconv1_w: self.p1_full_w * frame.lconv1_busy,
            sequential_w: self.p_seq_w,
            // Block-buffer traffic scales with the 3x3 engine's duty cycle;
            // keep SRAM power proportional to overall activity.
            sram_w: self.p_sram_w * frame.lconv3_busy.max(frame.lconv1_busy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EcnnConfig;
    use crate::timing::simulate_frame;
    use ecnn_isa::compile::compile;
    use ecnn_isa::params::QuantizedModel;
    use ecnn_model::ernet::{ErNetSpec, ErNetTask};

    #[test]
    fn area_totals_match_table6() {
        let a = AreaReport::paper_40nm(1.0);
        assert!((a.total_mm2() - 55.23).abs() < 0.01);
        // LCONV3x3 dominates at 65.8%.
        assert!((a.lconv3_mm2 / a.total_mm2() - 0.658).abs() < 0.001);
    }

    #[test]
    fn tripled_param_memory_matches_recognition_area() {
        // Section 7.3: "the area of eCNN would become 63.99 mm²".
        let a = AreaReport::paper_40nm(3.0);
        assert!((a.total_mm2() - 63.99).abs() < 0.35, "{}", a.total_mm2());
    }

    fn frame_for(task: ErNetTask, b: usize, r: usize, n: usize) -> FrameReport {
        let m = ErNetSpec::new(task, b, r, n).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, 128).unwrap();
        simulate_frame(&c, &m, &EcnnConfig::paper(), 3840, 2160)
    }

    #[test]
    fn ernet_power_lands_near_paper_average() {
        // Fig. 20: model powers cluster around the 6.94 W average; DnERNet
        // at UHD30 is ~7.34 W (Table 7).
        let f = frame_for(ErNetTask::Dn, 3, 1, 0);
        let p = PowerModel::paper_40nm().evaluate(&f);
        assert!(
            p.total_w() > 6.2 && p.total_w() < 7.8,
            "total {}",
            p.total_w()
        );
    }

    #[test]
    fn circuit_breakdown_matches_fig20_shares() {
        // Fig. 20 right: combinational 82-87%, sequential ~10%, SRAM 3-7%.
        let f = frame_for(ErNetTask::Dn, 3, 1, 0);
        let p = PowerModel::paper_40nm().evaluate(&f);
        let (comb, seq, sram) = p.circuit_fractions();
        assert!(comb > 0.80 && comb < 0.89, "comb {comb}");
        assert!(seq > 0.07 && seq < 0.13, "seq {seq}");
        assert!(sram > 0.02 && sram < 0.08, "sram {sram}");
    }

    #[test]
    fn er_heavy_models_draw_more_power() {
        let light = PowerModel::paper_40nm().evaluate(&frame_for(ErNetTask::Dn, 3, 1, 0));
        let heavy = PowerModel::paper_40nm().evaluate(&frame_for(ErNetTask::Dn, 6, 4, 0));
        assert!(heavy.total_w() > light.total_w());
    }
}
