//! Parity proptests for the flat-slice packed and runtime-dispatched SIMD
//! micro-kernels.
//!
//! Four oracles pin the kernel rewrites down:
//!
//! * the *tensor-crate goldens*: random single-conv programs must match a
//!   composition of the untouched `conv3x3_fixed` / `conv1x1_fixed`
//!   reference kernels bit-for-bit — on the packed path, the SIMD path
//!   (narrow-licensed) and the SIMD path forced wide, over both inference
//!   kinds (zero-padded border rows and truncated-pyramid interiors) and
//!   sides that are never lane multiples;
//! * the *kept reference path*: random ERNet programs with randomized
//!   (and sparsified) parameters must execute bit-identically under the
//!   full variant matrix `{Simd, Simd-forced-wide, Packed, Reference}`;
//! * the *work counters*: `ExecStats::work()` (mac3/mac1/traffic) must be
//!   unchanged by the kernel selection, and warm packed/SIMD execution
//!   must do zero kernel-prep allocations;
//! * the *narrow license*: unproven programs must never select the
//!   `i32` accumulation path, the untouched uniform paper model must be
//!   fully licensed, and the license must survive the Session /
//!   AsyncSession / ShardedBackend plumbing bit-identically.

use ecnn_core::engine::{Backend, EcnnBackend, Workload};
use ecnn_core::sharded::ShardedBackend;
use ecnn_isa::compile::compile;
use ecnn_isa::params::QuantizedModel;
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_model::layer::{Activation, Layer, Op};
use ecnn_model::model::{InferenceKind, Model};
use ecnn_model::RealTimeSpec;
use ecnn_sim::exec::{execute_with, quantize_input, BlockPlan, Kernels, PlanePool};
use ecnn_sim::kernels::simd;
use ecnn_tensor::conv::{conv1x1_fixed, conv3x3_fixed, FixedConvParams, Padding};
use ecnn_tensor::{ImageKind, SyntheticImage};
use proptest::prelude::*;

/// Overwrites every parameter of `qm` with seeded pseudo-random codes in
/// `[-8, 8]`, zeroing roughly `sparsity_pct`% of them so the packed
/// zero-tap/zero-column masks are exercised.
fn scramble(qm: &mut QuantizedModel, seed: u64, sparsity_pct: u64) {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as i64
    };
    for p in qm.layers.iter_mut().flatten() {
        for w in
            p.w3.iter_mut()
                .chain(p.w1.iter_mut())
                .chain(p.b3.iter_mut())
                .chain(p.b1.iter_mut())
        {
            let r = next();
            *w = if r.unsigned_abs() % 100 < sparsity_pct {
                0
            } else {
                (r.rem_euclid(17) - 8) as i16
            };
        }
    }
}

fn image_kind(sel: u64) -> ImageKind {
    match sel % 4 {
        0 => ImageKind::Smooth,
        1 => ImageKind::Edges,
        2 => ImageKind::Texture,
        _ => ImageKind::Mixed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A random head-conv + 1×1 program equals the golden reference
    /// composition, for both inference kinds.
    #[test]
    fn random_conv_programs_match_golden_composition(
        seed in 0u64..1_000_000,
        side in 12usize..28,
        sparsity in 0u64..70,
        padded_sel in 0u64..2,
    ) {
        let padded = padded_sel == 1;
        let inference = if padded {
            InferenceKind::ZeroPadded
        } else {
            InferenceKind::TruncatedPyramid
        };
        let m = Model::new(
            "conv-then-1x1",
            3,
            32,
            vec![
                Layer::new(Op::Conv3x3 { in_c: 3, out_c: 32, act: Activation::None }),
                Layer::new(Op::Conv1x1 { in_c: 32, out_c: 32, act: Activation::None }),
            ],
        )
        .unwrap()
        .with_inference(inference);
        let mut qm = QuantizedModel::uniform(&m);
        scramble(&mut qm, seed, sparsity);
        let c = compile(&qm, side).unwrap();
        let img = SyntheticImage::new(image_kind(seed), seed % 97).rgb(side, side);
        let input = img.map(|v| qm.input_q.quantize(v));

        let plan = BlockPlan::new(&c.program, &c.leafs).unwrap();
        let mut wide_plan = plan.clone();
        wide_plan.force_wide();
        let mut pool = PlanePool::new();
        let out = execute_with(&plan, &mut pool, &input, Kernels::Packed)
            .unwrap()
            .clone();
        let mut simd_pool = PlanePool::new();
        let simd_out = execute_with(&plan, &mut simd_pool, &input, Kernels::Simd)
            .unwrap()
            .clone();
        let mut wide_pool = PlanePool::new();
        let wide_out = execute_with(&wide_plan, &mut wide_pool, &input, Kernels::Simd)
            .unwrap()
            .clone();
        // A cleared license means the SIMD path never enters the narrow
        // i32 loops, whatever the verifier proved.
        prop_assert_eq!(wide_pool.stats().narrow_instrs, 0);

        // Golden: hardware-padded 32ch input through the untouched
        // fixed-point reference kernels, layer by layer.
        let padding = if padded { Padding::Zero } else { Padding::Valid };
        let p0 = qm.layers[0].as_ref().unwrap();
        let mid = conv3x3_fixed(
            &input.with_channels(32),
            qm.input_q.frac() as i32,
            &FixedConvParams {
                weights: &p0.w3,
                w_format: p0.w3_q,
                bias: &p0.b3,
                b_format: p0.b3_q,
                out_format: p0.out_q,
            },
            32,
            padding,
        );
        let p1 = qm.layers[1].as_ref().unwrap();
        let golden = conv1x1_fixed(
            &mid,
            p0.out_q.frac() as i32,
            &FixedConvParams {
                weights: &p1.w1,
                w_format: p1.w1_q,
                bias: &p1.b1,
                b_format: p1.b1_q,
                out_format: p1.out_q,
            },
            32,
        );
        prop_assert_eq!(&out, &golden);
        prop_assert_eq!(&simd_out, &golden);
        prop_assert_eq!(&wide_out, &golden);
    }

    /// Random ERNet programs execute bit-identically across the full
    /// variant matrix (SIMD narrow-licensed, SIMD forced wide, packed,
    /// reference), with identical deterministic work counters, and warm
    /// packed execution performs zero kernel-prep allocations.
    #[test]
    fn packed_and_reference_paths_agree(
        seed in 0u64..1_000_000,
        b in 1usize..4,
        r in 1usize..3,
        sel in 0usize..4,
        sparsity in 0u64..70,
    ) {
        let task = match sel {
            0 => ErNetTask::Dn,
            1 => ErNetTask::Sr2,
            2 => ErNetTask::Sr4,
            _ => ErNetTask::Dn12,
        };
        let n = if b > 1 { 1 } else { 0 };
        let m = ErNetSpec::new(task, b, r, n).build().unwrap();
        let mut qm = QuantizedModel::uniform(&m);
        scramble(&mut qm, seed, sparsity);
        let side = if task == ErNetTask::Dn12 { 48 } else { 32 };
        let c = compile(&qm, side).unwrap();
        let img = SyntheticImage::new(image_kind(seed), seed % 89).rgb(side, side);
        let input = quantize_input(&img, &c.program);

        let plan = BlockPlan::new(&c.program, &c.leafs).unwrap();
        let mut fast_pool = PlanePool::new();
        let fast = execute_with(&plan, &mut fast_pool, &input, Kernels::Packed)
            .unwrap()
            .clone();
        let warm_mark = fast_pool.stats();
        let warm = execute_with(&plan, &mut fast_pool, &input, Kernels::Packed)
            .unwrap()
            .clone();
        let mut ref_pool = PlanePool::new();
        let reference = execute_with(&plan, &mut ref_pool, &input, Kernels::Reference)
            .unwrap()
            .clone();

        prop_assert_eq!(&fast, &reference);
        prop_assert_eq!(&warm, &reference);
        // mac/traffic counters are invariant under the kernel selection.
        prop_assert_eq!(fast_pool.stats().delta_since(&warm_mark).work(), ref_pool.stats().work());
        // Steady state: the packed cache serves every instruction and the
        // arena recycles every buffer — zero kernel-prep allocations.
        let steady = fast_pool.stats().delta_since(&warm_mark);
        prop_assert_eq!(steady.planes_allocated, 0);
        prop_assert_eq!(steady.params_reused, c.program.instructions.len() as u64);
        prop_assert_eq!(ref_pool.stats().params_reused, 0);

        // SIMD, both licensed and forced wide, joins the same equivalence
        // class with the same work counters; the cleared license must pin
        // the narrow counter to zero.
        let golden = reference;
        let golden_work = ref_pool.stats().work();
        let mut wide_plan = plan.clone();
        wide_plan.force_wide();
        prop_assert_eq!(wide_plan.narrow_licensed(), 0);
        for (vplan, label) in [(&plan, "simd"), (&wide_plan, "simd-wide")] {
            let mut pool = PlanePool::new();
            let out = execute_with(vplan, &mut pool, &input, Kernels::Simd)
                .unwrap()
                .clone();
            prop_assert_eq!(&out, &golden);
            prop_assert_eq!(pool.stats().work(), golden_work);
            if label == "simd-wide" {
                prop_assert_eq!(pool.stats().narrow_instrs, 0);
            }
        }
    }
}

/// An instruction whose accumulator hull the verifier cannot fit in
/// `i32` must never run narrow. Legal in-format codes on 32-channel
/// stages can never overflow an `i32` accumulator (32·9·|w|·|src| stays
/// under 2³¹ for 8-bit codes), so the regression forges a two-group
/// (64-channel) conv and then maxes the compiled leaf weights directly:
/// the wide stage's hull reaches ~2.4e9 > `i32::MAX` and loses its
/// license while the narrow head stages keep theirs — the run must take
/// the narrow path exactly on the licensed subset and still match the
/// reference kernels bit-for-bit (the wide `i64` path is always exact).
#[test]
fn unproven_instructions_never_select_narrow() {
    let m = Model::new(
        "wide",
        3,
        32,
        vec![
            Layer::new(Op::Conv3x3 {
                in_c: 3,
                out_c: 64,
                act: Activation::None,
            }),
            Layer::new(Op::Conv3x3 {
                in_c: 64,
                out_c: 32,
                act: Activation::None,
            }),
        ],
    )
    .unwrap();
    let qm = QuantizedModel::uniform(&m);
    let mut c = compile(&qm, 32).unwrap();
    for leafs in &mut c.leafs {
        for leaf in leafs.iter_mut() {
            for w in leaf.w3.iter_mut().chain(leaf.w1.iter_mut()) {
                *w = i16::MAX;
            }
        }
    }
    let plan = BlockPlan::new(&c.program, &c.leafs).unwrap();
    assert!(
        plan.narrow_licensed() < c.program.instructions.len(),
        "the forged two-group conv must lose its narrow license"
    );
    assert!(
        plan.narrow_licensed() > 0,
        "the in-bounds head stages keep theirs"
    );

    let img = SyntheticImage::new(ImageKind::Mixed, 7).rgb(32, 32);
    let input = quantize_input(&img, &c.program);
    let mut simd_pool = PlanePool::new();
    let simd_out = execute_with(&plan, &mut simd_pool, &input, Kernels::Simd)
        .unwrap()
        .clone();
    // Narrow executions track the license set exactly — never the
    // unproven instruction.
    assert_eq!(
        simd_pool.stats().narrow_instrs,
        plan.narrow_licensed() as u64
    );
    let mut ref_pool = PlanePool::new();
    let reference = execute_with(&plan, &mut ref_pool, &input, Kernels::Reference).unwrap();
    assert_eq!(&simd_out, reference);
}

/// The untouched uniform paper model is fully narrow-provable: every
/// instruction carries a license, a SIMD frame takes the narrow path on
/// each of them, and the stats are tagged with the dispatched level.
#[test]
fn paper_model_is_narrow_licensed_end_to_end() {
    let m = ErNetSpec::new(ErNetTask::Sr2, 3, 1, 1).build().unwrap();
    let qm = QuantizedModel::uniform(&m);
    let c = compile(&qm, 32).unwrap();
    let plan = BlockPlan::new(&c.program, &c.leafs).unwrap();
    assert_eq!(
        plan.narrow_licensed(),
        c.program.instructions.len(),
        "every instruction of the uniform paper model must prove narrow"
    );

    let img = SyntheticImage::new(ImageKind::Texture, 11).rgb(32, 32);
    let input = quantize_input(&img, &c.program);
    let mut pool = PlanePool::new();
    execute_with(&plan, &mut pool, &input, Kernels::Simd).unwrap();
    assert_eq!(
        pool.stats().narrow_instrs,
        plan.narrow_licensed() as u64,
        "one narrow execution per licensed instruction per frame"
    );
    assert_eq!(
        pool.stats().kernel_variant,
        Kernels::Simd.variant(simd::detect())
    );
    assert!(pool.stats().kernel_variant.name().starts_with("simd"));
}

/// The kernel selection survives every execution surface bit-identically:
/// for each `Kernels` choice, `Engine::run_image`, a two-worker
/// `AsyncSession` and a two-shard `ShardedBackend` (over
/// `EcnnBackend::with_kernels`) all agree with each other and across
/// kernel choices, and the plumbing reports the choice it was given.
#[test]
fn kernel_choice_is_honored_across_session_pipeline_and_shards() {
    let w = Workload::ernet(
        ErNetSpec::new(ErNetTask::Dn, 2, 1, 0),
        40,
        RealTimeSpec::HD30,
    )
    .unwrap();
    let img = SyntheticImage::new(ImageKind::Edges, 31).rgb(80, 80);

    let mut baseline: Option<(ecnn_tensor::Tensor<f32>, u64)> = None;
    for k in [Kernels::Reference, Kernels::Packed, Kernels::Simd] {
        let backend = EcnnBackend::paper().with_kernels(k);
        let engine = backend.engine(&w).unwrap();
        assert_eq!(engine.kernels(), k);
        assert_eq!(engine.session().kernels(), k);

        let (out, stats) = engine.run_image(&img).unwrap();
        let expect_variant = k.variant(simd::detect());
        assert_eq!(stats.exec.kernel_variant, expect_variant, "{k:?} tag");
        match &baseline {
            None => baseline = Some((out.clone(), stats.exec.work().mac3)),
            Some((ref_out, mac3)) => {
                assert_eq!(&out, ref_out, "{k:?} run_image parity");
                assert_eq!(stats.exec.work().mac3, *mac3, "{k:?} mac parity");
            }
        }
        let ref_out = &baseline.as_ref().unwrap().0;

        // Pipelined path: the async workers build sessions off the same
        // engine and must inherit the choice.
        let mut async_session = engine.async_session(2);
        let t0 = async_session.submit(img.clone()).unwrap();
        let t1 = async_session.submit(img.clone()).unwrap();
        let frames = async_session.drain().unwrap();
        assert_eq!(frames.len(), 2);
        let _ = (t0, t1);
        for (frame, fstats) in &frames {
            assert_eq!(frame, ref_out, "{k:?} async parity");
            assert_eq!(fstats.exec.kernel_variant, expect_variant);
        }

        // Sharded path: each shard worker sessions off an engine built by
        // the backend, so `with_kernels` is the only way the choice can
        // reach it.
        let sharded = ShardedBackend::new(EcnnBackend::paper().with_kernels(k), 2);
        let (sout, sstats) = sharded.run_image(&w, &img).unwrap();
        assert_eq!(&sout, ref_out, "{k:?} sharded parity");
        assert_eq!(sstats.exec.kernel_variant, expect_variant);
    }
}
