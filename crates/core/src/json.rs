//! Minimal deterministic JSON support for the serializable config
//! surface ([`crate::config::EngineConfig`], `TuningRecord`).
//!
//! The offline vendor set's `serde` stub generates no real codegen, so
//! records are written with deterministic hand-rolled formatting (the
//! same idiom `ecnn-lint --json` uses) and read back through this tiny
//! recursive-descent parser. The dialect is the subset the records
//! emit: objects, arrays, strings, booleans, `null` and *integer*
//! numbers — fractions and exponents are a parse error, which keeps
//! round-trips exact (no `f64` precision cliff for large counters).

use std::fmt::Write as _;

/// A parsed JSON value (integer-only numbers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    Int(i128),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed).
    pub(crate) fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup.
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object member, as a structured error.
    pub(crate) fn require(&self, key: &str) -> Result<&Json, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    /// The value as a string slice.
    pub(crate) fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    /// The value as a `u64`.
    pub(crate) fn as_u64(&self) -> Result<u64, String> {
        match self {
            Json::Int(n) => u64::try_from(*n).map_err(|_| format!("{n} out of u64 range")),
            other => Err(format!("expected integer, got {other:?}")),
        }
    }

    /// The value as a `usize`.
    pub(crate) fn as_usize(&self) -> Result<usize, String> {
        self.as_u64()
            .and_then(|n| usize::try_from(n).map_err(|_| format!("{n} out of usize range")))
    }

    /// The value as a bool.
    pub(crate) fn as_bool(&self) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

/// JSON string escaping for the deterministic writers.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(format!(
                "non-integer number at byte {start} (records carry integers only)"
            ));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<i128>()
            .map(Json::Int)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = Json::parse(
            "{\"a\": 1, \"b\": [true, null, \"x\\ny\"], \"c\": {\"d\": -7}, \"e\": false}",
        )
        .unwrap();
        assert_eq!(v.require("a").unwrap().as_u64().unwrap(), 1);
        assert_eq!(v.get("c").unwrap().require("d").unwrap(), &Json::Int(-7));
        match v.get("b").unwrap() {
            Json::Arr(items) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[2].as_str().unwrap(), "x\ny");
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert!(!v.get("e").unwrap().as_bool().unwrap());
    }

    #[test]
    fn escape_round_trips() {
        let raw = "quote \" slash \\ newline \n tab \t";
        let parsed = Json::parse(&escape(raw)).unwrap();
        assert_eq!(parsed.as_str().unwrap(), raw);
    }

    #[test]
    fn rejects_floats_and_trailing_garbage() {
        assert!(Json::parse("1.5").is_err());
        assert!(Json::parse("1e3").is_err());
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
    }
}
