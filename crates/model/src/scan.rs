//! The model-selection scan of Section 4.2 / Fig. 8.
//!
//! For each module count `B`, find the largest expansion ratio `RE = R + N/B`
//! (capped at the paper's system bound `RE ≤ 4`) such that the *total*
//! block-based complexity — `NCR × intrinsic` — fits the per-pixel budget.
//! Deeper models suffer larger NCR (the truncated pyramid steepens), so the
//! feasible `RE` and with it the intrinsic complexity fall as `B` grows —
//! the paper's core observation that "deeper networks do not necessarily
//! perform better now".

use crate::blockflow::ncr;
use crate::complexity::{ChannelMode, Complexity};
use crate::ernet::{ErNetSpec, ErNetTask};
use serde::{Deserialize, Serialize};

/// The paper's system upper bound on the expansion ratio.
pub const MAX_RE: f64 = 4.0;

/// One feasible scan candidate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The model hyper-parameters.
    pub spec: ErNetSpec,
    /// Overall expansion ratio `R + N/B`.
    pub re: f64,
    /// Exact NCR at the scan's input-block size.
    pub ncr: f64,
    /// Intrinsic complexity in KOP per output pixel (hardware channels).
    pub intrinsic_kop: f64,
    /// Block-based complexity `NCR × intrinsic` in KOP per output pixel.
    pub total_kop: f64,
}

/// Enumerates, for every `B` in `1..=b_max`, the largest-`RE` ERNet that fits
/// `budget_kop` (total block-based KOP per output pixel) with input blocks of
/// side `xi`. Models whose pyramid collapses at `xi` or that cannot fit the
/// budget even at `RE = 1` are skipped, so the scan naturally terminates at
/// the feasible depth range (top panel of Fig. 8).
pub fn scan_candidates(task: ErNetTask, budget_kop: f64, xi: f64, b_max: usize) -> Vec<Candidate> {
    let mut out = Vec::new();
    for b in 1..=b_max {
        // Candidate REs for this B, descending: R + N/B for R in 1..=4, N in 0..B,
        // capped at MAX_RE.
        let mut res: Vec<(usize, usize)> = Vec::new();
        for r in 1..=(MAX_RE as usize) {
            for n in 0..b {
                if r as f64 + n as f64 / b as f64 <= MAX_RE {
                    res.push((r, n));
                }
            }
        }
        res.sort_by(|a, b_| {
            let rea = a.0 as f64 + a.1 as f64 / b as f64;
            let reb = b_.0 as f64 + b_.1 as f64 / b as f64;
            reb.partial_cmp(&rea).expect("finite")
        });
        for (r, n) in res {
            let spec = ErNetSpec::new(task, b, r, n);
            let Ok(model) = spec.build() else { continue };
            let Some(model_ncr) = ncr(&model, xi, ChannelMode::Hardware) else {
                continue; // pyramid collapsed: B too deep for this xi
            };
            let intrinsic = Complexity::of(&model, ChannelMode::Hardware).kop_per_pixel;
            let total = model_ncr * intrinsic;
            if total <= budget_kop {
                out.push(Candidate {
                    spec,
                    re: spec.re(),
                    ncr: model_ncr,
                    intrinsic_kop: intrinsic,
                    total_kop: total,
                });
                break; // largest feasible RE found for this B
            }
        }
    }
    out
}

/// Picks the candidate with the highest intrinsic complexity — the scan's
/// proxy ordering before the lightweight-training quality pass (the paper
/// trains all candidates; `ecnn-nn` provides that stage).
pub fn best_by_intrinsic(candidates: &[Candidate]) -> Option<&Candidate> {
    candidates.iter().max_by(|a, b| {
        a.intrinsic_kop
            .partial_cmp(&b.intrinsic_kop)
            .expect("finite")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn re_frontier_decreases_with_depth() {
        // Fig. 8 top panel: RE falls as B grows for a fixed budget.
        let c = scan_candidates(ErNetTask::Sr4, 164.0, 128.0, 40);
        assert!(!c.is_empty());
        for w in c.windows(2) {
            assert!(
                w[1].re <= w[0].re + 1e-9,
                "RE must be non-increasing: B={} re={} then B={} re={}",
                w[0].spec.b,
                w[0].re,
                w[1].spec.b,
                w[1].re
            );
        }
    }

    #[test]
    fn larger_budget_admits_larger_re() {
        let small = scan_candidates(ErNetTask::Sr4, 164.0, 128.0, 20);
        let large = scan_candidates(ErNetTask::Sr4, 655.0, 128.0, 20);
        for (s, l) in small.iter().zip(&large) {
            assert_eq!(s.spec.b, l.spec.b);
            assert!(l.re >= s.re, "B={}: {} vs {}", s.spec.b, l.re, s.re);
        }
    }

    #[test]
    fn all_candidates_respect_budget() {
        for budget in [164.0, 328.0, 655.0] {
            for c in scan_candidates(ErNetTask::Sr4, budget, 128.0, 40) {
                assert!(c.total_kop <= budget + 1e-9);
                assert!(c.re <= MAX_RE + 1e-9);
                assert!((c.total_kop / c.intrinsic_kop - c.ncr).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn hd30_budget_reaches_deep_high_ncr_models() {
        // Paper Section 4.2: "In the case of 655 KOP/pixel, NCR can be as
        // high as 2.8-5.9×, and the corresponding intrinsic complexity is as
        // low as 223-107 KOP/pixel."
        let c = scan_candidates(ErNetTask::Sr4, 655.0, 128.0, 45);
        let deepest = c.last().unwrap();
        assert!(deepest.spec.b >= 40, "deepest B = {}", deepest.spec.b);
        assert!(
            deepest.ncr > 4.5 && deepest.ncr < 6.5,
            "deep NCR = {}",
            deepest.ncr
        );
        assert!(
            deepest.intrinsic_kop < 130.0,
            "deep intrinsic = {}",
            deepest.intrinsic_kop
        );
        // Once RE saturates at 4, intrinsic peaks near the paper's 223 and
        // then falls with depth: deeper ≠ better.
        let peak = c.iter().map(|x| x.intrinsic_kop).fold(0.0, f64::max);
        assert!((peak - 223.0).abs() < 15.0, "peak intrinsic = {peak}");
        assert!(deepest.intrinsic_kop < peak * 0.6);
    }

    #[test]
    fn paper_picks_are_feasible() {
        // SR4ERNet-B17R3N1 fits the UHD30 budget; SR4ERNet-B34R4N0 fits HD30.
        let uhd = scan_candidates(ErNetTask::Sr4, 164.0, 128.0, 40);
        assert!(
            uhd.iter().any(|c| c.spec.b == 17 && c.re >= 3.0),
            "B17 with RE>=3 must fit UHD30"
        );
        let hd = scan_candidates(ErNetTask::Sr4, 655.0, 128.0, 40);
        assert!(
            hd.iter().any(|c| c.spec.b == 34 && c.re >= 3.9),
            "B34 with RE~4 must fit HD30"
        );
    }

    #[test]
    fn denoiser_scan_is_shallower_than_sr() {
        // Dn models run at full output resolution: far fewer layers fit.
        let dn = scan_candidates(ErNetTask::Dn, 164.0, 128.0, 40);
        let sr = scan_candidates(ErNetTask::Sr4, 164.0, 128.0, 40);
        let dn_max_b = dn.iter().map(|c| c.spec.b).max().unwrap_or(0);
        let sr_max_b = sr.iter().map(|c| c.spec.b).max().unwrap_or(0);
        assert!(dn_max_b < sr_max_b, "dn {dn_max_b} vs sr {sr_max_b}");
        // DnERNet-B3R1N0 (the paper's UHD30 pick) must be feasible.
        assert!(dn.iter().any(|c| c.spec.b == 3 && c.re >= 1.0));
    }

    #[test]
    fn best_by_intrinsic_returns_max() {
        let c = scan_candidates(ErNetTask::Sr4, 328.0, 128.0, 30);
        let best = best_by_intrinsic(&c).unwrap();
        for cand in &c {
            assert!(cand.intrinsic_kop <= best.intrinsic_kop + 1e-9);
        }
    }
}
