//! Dynamic fixed-point Q-formats (paper Section 4.3, Fig. 9).
//!
//! The paper quantizes weights, biases and feature maps to 8-bit values with
//! a per-layer fractional position: `Qn` for signed values and `UQn` for
//! unsigned values (post-ReLU features). Internal partial sums are kept in
//! full precision. The fractional position `n̂` is chosen per value group by
//! minimizing the L1 or L2 quantization error (Eq. 4), and selected parameter
//! groups may be narrowed to 7 bits when the parameter memory overflows
//! (Section 7.1, Table 5).

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fixed-point format: `bits`-wide two's-complement (or unsigned) integer
/// code with `frac` fractional bits. The represented value is
/// `code * 2^-frac`.
///
/// # Example
///
/// ```
/// use ecnn_tensor::QFormat;
/// let q = QFormat::signed(6); // Q6: range [-2, 127/64]
/// assert_eq!(q.quantize(0.5), 32);
/// assert_eq!(q.dequantize(32), 0.5);
/// assert_eq!(q.quantize(100.0), 127); // clipped
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QFormat {
    signed: bool,
    frac: i8,
    bits: u8,
}

impl QFormat {
    /// 8-bit signed `Qn` format with `frac` fractional bits.
    pub const fn signed(frac: i8) -> Self {
        Self {
            signed: true,
            frac,
            bits: 8,
        }
    }

    /// 8-bit unsigned `UQn` format with `frac` fractional bits.
    pub const fn unsigned(frac: i8) -> Self {
        Self {
            signed: false,
            frac,
            bits: 8,
        }
    }

    /// Format with an explicit bit width (7-bit narrowing in Table 5).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 15 (codes are stored in `i16`).
    pub fn with_bits(signed: bool, frac: i8, bits: u8) -> Self {
        assert!((1..=15).contains(&bits), "bit width {bits} out of range");
        Self { signed, frac, bits }
    }

    /// Whether the format is signed (`Qn`) rather than unsigned (`UQn`).
    #[inline]
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// Fractional bit count `n` (may be negative for large dynamic ranges).
    #[inline]
    pub fn frac(&self) -> i8 {
        self.frac
    }

    /// Total bit width of the code.
    #[inline]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Quantization step `2^-n`.
    #[inline]
    pub fn step(&self) -> f32 {
        (2.0f32).powi(-(self.frac as i32))
    }

    /// Smallest representable code.
    #[inline]
    pub fn min_code(&self) -> i32 {
        if self.signed {
            -(1 << (self.bits - 1))
        } else {
            0
        }
    }

    /// Largest representable code.
    #[inline]
    pub fn max_code(&self) -> i32 {
        if self.signed {
            (1 << (self.bits - 1)) - 1
        } else {
            (1 << self.bits) - 1
        }
    }

    /// Largest representable value.
    #[inline]
    pub fn max_value(&self) -> f32 {
        self.max_code() as f32 * self.step()
    }

    /// Smallest representable value.
    #[inline]
    pub fn min_value(&self) -> f32 {
        self.min_code() as f32 * self.step()
    }

    /// Quantizes `x`: round to nearest (ties away from zero), then clip to the
    /// representable code range. This is the `Qn(·)` function of Eq. (4).
    #[inline]
    pub fn quantize(&self, x: f32) -> i16 {
        let scaled = x as f64 * (2.0f64).powi(self.frac as i32);
        let rounded = scaled.round(); // f64::round = ties away from zero
        let clipped = rounded.clamp(self.min_code() as f64, self.max_code() as f64);
        clipped as i16
    }

    /// Reconstructs the real value of a code.
    #[inline]
    pub fn dequantize(&self, code: i16) -> f32 {
        code as f32 * self.step()
    }

    /// Quantize-dequantize: the value actually realized in hardware.
    #[inline]
    pub fn round_trip(&self, x: f32) -> f32 {
        self.dequantize(self.quantize(x))
    }

    /// Clamps a full-precision accumulator code to this format's code range.
    #[inline]
    pub fn clamp_code(&self, code: i32) -> i16 {
        code.clamp(self.min_code(), self.max_code()) as i16
    }

    /// Quantizes every element of a tensor, returning codes plus format.
    pub fn quantize_tensor(&self, t: &Tensor<f32>) -> QuantizedTensor {
        QuantizedTensor {
            codes: t.map(|v| self.quantize(v)),
            format: *self,
        }
    }

    /// Dequantizes a code tensor back to f32.
    pub fn dequantize_tensor(&self, q: &QuantizedTensor) -> Tensor<f32> {
        assert_eq!(q.format, *self, "format mismatch");
        q.codes.map(|c| self.dequantize(c))
    }

    /// Sum of `|x - Qn(x)|^l` over `values` for this format (Eq. 4 inner sum).
    pub fn error_norm(&self, values: &[f32], l: NormOrder) -> f64 {
        values
            .iter()
            .map(|&x| {
                let e = (x - self.round_trip(x)) as f64;
                match l {
                    NormOrder::L1 => e.abs(),
                    NormOrder::L2 => e * e,
                }
            })
            .sum()
    }

    /// Searches the fractional position `n̂ ∈ [-8, 15]` minimizing the L1 or
    /// L2 quantization error over `values` (Eq. 4).
    ///
    /// Returns the best format; ties favour the larger `n` (finer step).
    pub fn fit(values: &[f32], signed: bool, bits: u8, l: NormOrder) -> QFormat {
        let mut best = QFormat::with_bits(signed, -8, bits);
        let mut best_err = f64::INFINITY;
        for n in -8i8..=15 {
            let q = QFormat::with_bits(signed, n, bits);
            let err = q.error_norm(values, l);
            if err <= best_err {
                best_err = err;
                best = q;
            }
        }
        best
    }
}

impl fmt::Debug for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for QFormat {
    /// Prints the paper's notation: `Q5`, `UQ7`, with a bit-width suffix when
    /// narrower than 8 bits (e.g. `Q5/7b`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.signed {
            write!(f, "U")?;
        }
        write!(f, "Q{}", self.frac)?;
        if self.bits != 8 {
            write!(f, "/{}b", self.bits)?;
        }
        Ok(())
    }
}

/// Which error norm Eq. (4) minimizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NormOrder {
    /// `l = 1`: favoured by the paper for final models (better PSNR after
    /// fine-tuning despite higher initial cropping).
    L1,
    /// `l = 2`.
    L2,
}

/// A tensor of fixed-point codes together with its [`QFormat`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    /// Integer codes (always materialized as `i16`, range-limited by the
    /// format).
    pub codes: Tensor<i16>,
    /// The format giving the codes meaning.
    pub format: QFormat,
}

impl QuantizedTensor {
    /// Reconstructs the floating-point tensor.
    pub fn to_f32(&self) -> Tensor<f32> {
        self.format.dequantize_tensor(self)
    }
}

/// Rounds and arithmetic-shifts a full-precision accumulator from `from_frac`
/// fractional bits to `to_frac`, matching the hardware's requantization stage
/// (round-to-nearest, ties away from zero for non-negative shift results).
///
/// # Example
///
/// ```
/// use ecnn_tensor::qformat::rescale_code;
/// // 1.5 in Q4 (code 24) -> Q1 (code 3)
/// assert_eq!(rescale_code(24, 4, 1), 3);
/// // 0.40625 in Q5 (code 13) -> Q2: 1.625 steps -> rounds to 2
/// assert_eq!(rescale_code(13, 5, 2), 2);
/// ```
#[inline]
pub fn rescale_code(acc: i64, from_frac: i32, to_frac: i32) -> i32 {
    let shift = from_frac - to_frac;
    if shift > 0 {
        // Round half away from zero, then arithmetic shift.
        let half = 1i64 << (shift - 1);
        if acc >= 0 {
            ((acc + half) >> shift) as i32
        } else {
            -(((-acc + half) >> shift) as i32)
        }
    } else {
        (acc << -shift) as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(QFormat::signed(5).to_string(), "Q5");
        assert_eq!(QFormat::unsigned(7).to_string(), "UQ7");
        assert_eq!(QFormat::with_bits(true, 4, 7).to_string(), "Q4/7b");
    }

    #[test]
    fn ranges() {
        let q = QFormat::signed(7);
        assert_eq!(q.min_code(), -128);
        assert_eq!(q.max_code(), 127);
        assert!((q.max_value() - 127.0 / 128.0).abs() < 1e-6);
        let u = QFormat::unsigned(8);
        assert_eq!(u.min_code(), 0);
        assert_eq!(u.max_code(), 255);
        let s7 = QFormat::with_bits(true, 4, 7);
        assert_eq!(s7.min_code(), -64);
        assert_eq!(s7.max_code(), 63);
    }

    #[test]
    fn quantize_rounds_and_clips() {
        let q = QFormat::signed(4); // step 1/16
        assert_eq!(q.quantize(0.5), 8);
        assert_eq!(q.quantize(0.49), 8); // 7.84 -> 8
        assert_eq!(q.quantize(-0.5), -8);
        assert_eq!(q.quantize(1000.0), 127);
        assert_eq!(q.quantize(-1000.0), -128);
        // ties away from zero
        assert_eq!(q.quantize(0.09375), 2); // 1.5 -> 2
        assert_eq!(q.quantize(-0.09375), -2);
    }

    #[test]
    fn unsigned_clips_negative_to_zero() {
        let u = QFormat::unsigned(4);
        assert_eq!(u.quantize(-3.0), 0);
        assert_eq!(u.quantize(2.0), 32);
    }

    #[test]
    fn negative_frac_for_large_values() {
        let q = QFormat::signed(-2); // step 4
        assert_eq!(q.quantize(100.0), 25);
        assert_eq!(q.dequantize(25), 100.0);
    }

    #[test]
    fn fit_picks_reasonable_precision() {
        // Values in [-0.9, 0.9]: Q7 maximizes resolution without clipping much.
        let vals: Vec<f32> = (-9..=9).map(|i| i as f32 * 0.1).collect();
        let q = QFormat::fit(&vals, true, 8, NormOrder::L2);
        assert_eq!(q.frac(), 7);
        // Values up to 100 need n = 0 or less.
        let vals = vec![100.0f32, -50.0, 25.0];
        let q = QFormat::fit(&vals, true, 8, NormOrder::L2);
        assert!(q.frac() <= 0, "got {q}");
        assert!((q.round_trip(100.0) - 100.0).abs() <= q.step());
    }

    #[test]
    fn fit_l1_crops_more_than_l2() {
        // Heavy-tailed data: L1 tolerates cropping the rare large value.
        let mut vals: Vec<f32> = vec![0.01; 1000];
        vals.push(3.0);
        let l1 = QFormat::fit(&vals, true, 8, NormOrder::L1);
        let l2 = QFormat::fit(&vals, true, 8, NormOrder::L2);
        assert!(
            l1.frac() >= l2.frac(),
            "L1 should choose at least as fine a step: {l1} vs {l2}"
        );
    }

    #[test]
    fn tensor_round_trip_within_step() {
        let t = Tensor::from_fn(2, 3, 3, |c, y, x| {
            (c as f32 - 0.5) * 0.3 + (y * 3 + x) as f32 * 0.01
        });
        let q = QFormat::signed(6);
        let qt = q.quantize_tensor(&t);
        let back = qt.to_f32();
        for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= q.step() / 2.0 + 1e-6);
        }
    }

    #[test]
    fn rescale_code_matches_round_half_away() {
        assert_eq!(rescale_code(24, 4, 1), 3);
        assert_eq!(rescale_code(20, 4, 1), 3); // 2.5 -> 3 (away from zero)
        assert_eq!(rescale_code(-20, 4, 1), -3); // -2.5 -> -3
        assert_eq!(rescale_code(-19, 4, 1), -2); // -2.375 -> -2
        assert_eq!(rescale_code(3, 0, 2), 12); // upshift
        assert_eq!(rescale_code(0, 8, 0), 0);
    }

    #[test]
    fn rescale_equivalent_to_float_rounding() {
        for acc in -1000i64..1000 {
            let got = rescale_code(acc, 6, 2);
            let want = {
                let v = acc as f64 / 64.0 * 4.0;
                // ties away from zero
                let r = v.abs().fract();
                if (r - 0.5).abs() < 1e-12 {
                    (v.abs().trunc() + 1.0).copysign(v) as i32
                } else {
                    v.round() as i32
                }
            };
            assert_eq!(got, want, "acc={acc}");
        }
    }
}
