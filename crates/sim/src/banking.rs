//! Eight-bank block-buffer mapping (Fig. 17).
//!
//! Features are stored as 4×2 tiles across eight sub-buffer banks. The
//! *normal* mapping interleaves banks linearly in tile raster order — fine
//! for the aligned tile reads/writes of plain convolution, but pixel-shuffle
//! upsampling writes a 2×2 *square* of tiles each cycle (one 4×2 conv tile
//! becomes an 8×4 pixel region), and with a linear mapping vertically
//! adjacent tiles land in the same bank whenever the row length in tiles is
//! a multiple of eight — exactly the 128-wide block case. The *interleaved*
//! mapping assigns banks by tile coordinates `(tx mod 4, ty mod 2)`, making
//! every 2×2 tile square conflict-free.

use serde::{Deserialize, Serialize};

/// Number of sub-buffer banks per block buffer.
pub const BANKS: usize = 8;

/// Bank-assignment policy for 4×2 tiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BankMapping {
    /// Linear raster interleaving: `bank = tile_index mod 8`.
    Normal,
    /// Coordinate interleaving: `bank = (tx mod 4) + 4·(ty mod 2)`.
    Interleaved,
}

impl BankMapping {
    /// Bank of the tile at `(tx, ty)` in a block `width_tiles` wide.
    pub fn bank(&self, tx: usize, ty: usize, width_tiles: usize) -> usize {
        match self {
            BankMapping::Normal => (ty * width_tiles + tx) % BANKS,
            BankMapping::Interleaved => (tx % 4) + 4 * (ty % 2),
        }
    }
}

/// Counts the per-cycle bank-conflict stalls when writing a whole block in
/// pixel-shuffle order: each cycle writes the 2×2 tile square produced by
/// one pre-shuffle conv tile. A cycle with `k` tiles mapped to one bank
/// needs `k-1` extra cycles.
pub fn shuffle_write_stalls(
    width_tiles: usize,
    height_tiles: usize,
    mapping: BankMapping,
) -> usize {
    let mut stalls = 0;
    let mut ty = 0;
    while ty + 1 < height_tiles.max(1) + 1 {
        let mut tx = 0;
        while tx + 1 < width_tiles.max(1) + 1 {
            let mut counts = [0usize; BANKS];
            for (dy, dx) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                let (x, y) = (tx + dx, ty + dy);
                if x < width_tiles && y < height_tiles {
                    counts[mapping.bank(x, y, width_tiles)] += 1;
                }
            }
            stalls += counts.iter().map(|&c| c.saturating_sub(1)).sum::<usize>();
            tx += 2;
        }
        ty += 2;
    }
    stalls
}

/// Counts read conflicts for aligned 4×2-tile reads (one tile per cycle) —
/// always zero by construction, kept as an executable invariant.
pub fn aligned_read_stalls(width_tiles: usize, height_tiles: usize, mapping: BankMapping) -> usize {
    let mut stalls = 0;
    for ty in 0..height_tiles {
        for tx in 0..width_tiles {
            // One access per cycle can never conflict.
            let _ = mapping.bank(tx, ty, width_tiles);
        }
    }
    stalls += 0;
    stalls
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_mapping_is_conflict_free_for_shuffle_writes() {
        for w in 1..64 {
            for h in [1usize, 2, 3, 8, 31, 32] {
                assert_eq!(
                    shuffle_write_stalls(w, h, BankMapping::Interleaved),
                    0,
                    "w={w} h={h}"
                );
            }
        }
    }

    #[test]
    fn normal_mapping_conflicts_on_8_aligned_rows() {
        // 128-pixel block => 32 tiles per row => vertical neighbours share a
        // bank under the linear mapping.
        let stalls = shuffle_write_stalls(32, 32, BankMapping::Normal);
        assert!(stalls > 0, "expected conflicts for 32-tile rows");
        // Every 2x2 square has both vertical pairs colliding: 2 stalls per
        // square, 16x16 squares.
        assert_eq!(stalls, 2 * 16 * 16);
    }

    #[test]
    fn normal_mapping_is_fine_for_non_multiple_of_8_rows() {
        // 29 tiles per row: vertical neighbour offset 29 ≡ 5 (mod 8) — no
        // collision inside a 2x2 square.
        assert_eq!(shuffle_write_stalls(29, 16, BankMapping::Normal), 0);
    }

    #[test]
    fn aligned_reads_never_stall() {
        assert_eq!(aligned_read_stalls(32, 63, BankMapping::Normal), 0);
        assert_eq!(aligned_read_stalls(32, 63, BankMapping::Interleaved), 0);
    }

    #[test]
    fn bank_ids_are_in_range() {
        for mapping in [BankMapping::Normal, BankMapping::Interleaved] {
            for ty in 0..10 {
                for tx in 0..40 {
                    assert!(mapping.bank(tx, ty, 40) < BANKS);
                }
            }
        }
    }
}
