//! Fused-layer line-buffer flow (Alwani et al. \[4\]) — the alternative the
//! paper rejects: it avoids DRAM traffic like the block flow but its SRAM
//! grows linearly with depth × image width × channels.

use crate::framebased::{IsoComputeFlow, ISO_COMPUTE_TOPS};
use ecnn_core::engine::{Backend, EngineError, FrameReport, Workload};
use ecnn_dram::DramConfig;
use ecnn_model::layer::Op;
use ecnn_model::Model;

/// SRAM bytes to fuse all layers of `model` over a frame of `width` pixels
/// with `feature_bits`-wide features: every CONV3×3 boundary buffers two
/// rows of its input feature map (the sliding-window reuse set).
pub fn fused_line_buffer_bytes(model: &Model, width: usize, feature_bits: u32) -> f64 {
    let channels = model.channel_walk();
    let scales = model.scale_walk();
    let mut bytes = 0.0;
    for (i, layer) in model.layers().iter().enumerate() {
        if matches!(layer.op, Op::Conv3x3 { .. } | Op::ErModule { .. }) && i > 0 {
            // Two rows of the layer's input at that stage's resolution.
            let w = width as f64 * scales[i];
            bytes += 2.0 * w * channels[i] as f64 * (feature_bits as f64 / 8.0);
        }
    }
    bytes
}

/// Depth at which fusion SRAM exceeds the block flow's fixed buffers.
pub fn crossover_depth(
    width: usize,
    channels: usize,
    feature_bits: u32,
    block_buffer_bytes: f64,
) -> usize {
    let per_layer = 2.0 * width as f64 * channels as f64 * (feature_bits as f64 / 8.0);
    (block_buffer_bytes / per_layer).ceil() as usize + 1
}

/// The fused-layer line-buffer flow as an engine [`Backend`]: DRAM sees
/// only the input/output images, but on-chip SRAM grows with depth ×
/// width × channels.
#[derive(Clone, Debug)]
pub struct FusionBackend {
    /// Peak compute available to the flow, TOPS.
    pub tops: f64,
    /// DRAM interface the flow runs on.
    pub dram: DramConfig,
}

impl Default for FusionBackend {
    fn default() -> Self {
        Self {
            tops: ISO_COMPUTE_TOPS,
            dram: DramConfig::DDR4_3200,
        }
    }
}

impl FusionBackend {
    /// Stable backend identifier, shared by [`Backend::name`] and the
    /// report it fills.
    pub const NAME: &'static str = "fused-layer";
}

impl Backend for FusionBackend {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn frame_report(&self, workload: &Workload) -> Result<FrameReport, EngineError> {
        let model = workload.model();
        let spec = workload.spec;
        // Line buffers live in the input/intermediate domain; for SR
        // bodies that is the low-resolution width.
        let lr_width = (spec.width as f64 / model.output_scale()).round() as usize;
        let sram = fused_line_buffer_bytes(model, lr_width, workload.feature_bits);
        Ok(IsoComputeFlow {
            backend: Self::NAME,
            tops: self.tops,
            dram: self.dram,
            feature_bytes_per_frame: 0.0,
            feature_sram_bytes: sram,
            power_w: None,
            note: format!(
                "Alwani-style fusion at {:.1} TOPS: {:.1} MB of line buffers (depth-linear)",
                self.tops,
                sram / 1e6
            ),
        }
        .report(workload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecnn_model::zoo;

    #[test]
    fn vdsr_fusion_needs_9_3mb_at_full_hd() {
        // Section 1: "9.3MB of SRAM will be required for supporting VDSR in
        // Full HD resolution" (64ch, 16-bit features, 1920 wide).
        let bytes = fused_line_buffer_bytes(&zoo::vdsr(), 1920, 16);
        assert!((bytes / 1e6 - 9.3).abs() < 0.4, "{} MB", bytes / 1e6);
    }

    #[test]
    fn fusion_sram_grows_linearly_with_depth() {
        let a = fused_line_buffer_bytes(&zoo::vdsr(), 1920, 16);
        let b = fused_line_buffer_bytes(&zoo::vdsr(), 3840, 16);
        assert!((b / a - 2.0).abs() < 0.01, "width-linear");
    }

    #[test]
    fn block_flow_wins_beyond_shallow_depths() {
        // eCNN's 1536 KB of block buffers beat fusion once a Full HD 64ch
        // model exceeds a handful of layers.
        let d = crossover_depth(1920, 64, 16, 1536.0 * 1024.0);
        assert!(d < 6, "crossover depth {d}");
    }
}
