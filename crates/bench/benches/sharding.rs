//! Criterion benchmark for the sharded execute path: one frame through
//! the block grid at 1, 2 and 4 worker shards, plus the warm-session
//! single-worker baseline (the plan/execute split's zero-allocation
//! steady state).
//!
//! The shard sweep only shows a wall-clock win on multi-core hosts; on a
//! single hardware thread the x2/x4 rows measure the (small) sharding
//! overhead instead.

use criterion::{criterion_group, criterion_main, Criterion};
use ecnn_core::engine::Engine;
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_tensor::{ImageKind, SyntheticImage, Tensor};
use std::hint::black_box;

fn engine() -> Engine {
    Engine::builder()
        .ernet(ErNetSpec::new(ErNetTask::Dn, 3, 1, 0))
        .block(64)
        .build()
        .unwrap()
}

fn frame() -> Tensor<f32> {
    SyntheticImage::new(ImageKind::Mixed, 17).rgb(208, 208)
}

fn bench_sharded_frame(c: &mut Criterion) {
    let eng = engine();
    let img = frame();
    for shards in [1usize, 2, 4] {
        c.bench_function(&format!("sharding/frame_208px_x{shards}"), |b| {
            b.iter(|| black_box(eng.run_image_sharded(black_box(&img), shards).unwrap()))
        });
    }
}

fn bench_warm_session(c: &mut Criterion) {
    let eng = engine();
    let img = frame();
    let mut session = eng.session();
    session.process(&img).unwrap(); // warm the plane pool
    c.bench_function("sharding/frame_208px_warm_session", |b| {
        b.iter(|| {
            session.process(black_box(&img)).unwrap();
            black_box(session.last_frame_stats())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sharded_frame, bench_warm_session
}
criterion_main!(benches);
