//! The unified engine/backend API: parity with the legacy pipeline,
//! cross-backend smoke coverage and streaming-session buffer reuse.

use ecnn_repro::prelude::*;
use ecnn_repro::tensor::{ImageKind, SyntheticImage};

/// The new `Engine` path must produce bit-identical pixels, identical run
/// statistics and identical `SystemReport` numbers to the legacy
/// `Accelerator::deploy` path on a small DnERNet.
#[test]
fn engine_matches_legacy_accelerator_path() {
    #[allow(deprecated)]
    let legacy = {
        use ecnn_repro::core::Accelerator;
        let model = ErNetSpec::new(ErNetTask::Dn, 2, 1, 0).build().unwrap();
        let qm = QuantizedModel::uniform(&model);
        Accelerator::paper().deploy(&qm, 48).unwrap()
    };
    let engine = Engine::builder()
        .ernet(ErNetSpec::new(ErNetTask::Dn, 2, 1, 0))
        .block(48)
        .realtime(RealTimeSpec::UHD30)
        .build()
        .unwrap();

    let img = SyntheticImage::new(ImageKind::Mixed, 99).rgb(96, 96);
    let (legacy_out, legacy_stats) = legacy.run_image(&img).unwrap();
    let (engine_out, engine_stats) = engine.run_image(&img).unwrap();
    assert_eq!(engine_out, legacy_out, "pixels must be bit-identical");
    assert_eq!(engine_stats, legacy_stats);

    let legacy_report = legacy.system_report(RealTimeSpec::UHD30);
    let engine_report = engine.system_report();
    assert_eq!(engine_report.frame, legacy_report.frame);
    assert_eq!(engine_report.meets_realtime, legacy_report.meets_realtime);
    assert_eq!(engine_report.power.total_w(), legacy_report.power.total_w());
    assert_eq!(engine_report.dram_power, legacy_report.dram_power);
    assert_eq!(engine_report.dram_config, legacy_report.dram_config);
}

/// Every registered backend answers the same workload through the shared
/// trait surface.
#[test]
fn all_registered_backends_report_one_workload() {
    let workload = Workload::ernet(
        ErNetSpec::new(ErNetTask::Dn, 3, 1, 0),
        128,
        RealTimeSpec::UHD30,
    )
    .unwrap();
    let backends = registry();
    assert_eq!(
        backends.len(),
        7,
        "ecnn + two sharded variants + four baselines"
    );
    let mut reports = Vec::new();
    for backend in &backends {
        let r = backend
            .frame_report(&workload)
            .unwrap_or_else(|e| panic!("{}: {e}", backend.name()));
        assert_eq!(r.backend, backend.name());
        assert_eq!(r.workload, "DnERNet-B3R1N0");
        assert!(
            r.fps.is_finite() && r.fps > 0.0,
            "{}: fps {}",
            backend.name(),
            r.fps
        );
        assert!(r.dram_bytes_per_frame > 0.0, "{}", backend.name());
        reports.push(r);
    }
    // The block-based flow wins the bandwidth comparison — the paper's
    // headline — and the table renders one row per backend. Sharding
    // keeps the traffic totals intact.
    let ecnn = &reports[0];
    let frame_based = reports
        .iter()
        .find(|r| r.backend == "frame-based")
        .expect("frame-based registered");
    assert!(frame_based.dram_bytes_per_frame > 10.0 * ecnn.dram_bytes_per_frame);
    for sharded in reports.iter().filter(|r| r.backend.starts_with("ecnn[x")) {
        // Per-shard analytic byte counts truncate independently, so the
        // sum may differ from the whole-frame value by under a byte per
        // shard per direction.
        let diff = (sharded.dram_bytes_per_frame - ecnn.dram_bytes_per_frame).abs();
        assert!(diff <= 8.0, "{}: traffic drift {diff} B", sharded.backend);
    }
    let table = FrameReport::table(&reports);
    assert_eq!(table.lines().count(), 1 + reports.len());
    for backend in &backends {
        assert!(
            table.contains(backend.name()),
            "table misses {}",
            backend.name()
        );
    }
}

/// Backends that cannot execute images say so through the typed error
/// instead of panicking (the baselines used to be bare functions).
#[test]
fn non_executable_backends_decline_run_image() {
    let workload = Workload::ernet(
        ErNetSpec::new(ErNetTask::Dn, 1, 1, 0),
        40,
        RealTimeSpec::HD30,
    )
    .unwrap();
    let img = SyntheticImage::new(ImageKind::Smooth, 5).rgb(56, 56);
    for backend in registry() {
        let result = backend.run_image(&workload, &img);
        if backend.supports_run_image() {
            let (out, stats) = result.expect("ecnn runs images");
            assert_eq!(out.shape(), (3, 56, 56));
            assert!(stats.blocks > 0);
        } else {
            match result {
                Err(EngineError::Unsupported {
                    backend: name,
                    capability,
                }) => {
                    assert_eq!(name, backend.name());
                    assert_eq!(capability, "run_image");
                }
                other => panic!("{}: expected Unsupported, got {other:?}", backend.name()),
            }
        }
    }
}

/// A session streams consecutive frames without reallocating any of its
/// working buffers, and matches the one-shot path bit-for-bit.
#[test]
fn session_streams_without_per_frame_reallocation() {
    let engine = Engine::builder()
        .ernet(ErNetSpec::new(ErNetTask::Dn, 1, 1, 0))
        .block(40)
        .build()
        .unwrap();
    let frames: Vec<_> = (0..4)
        .map(|seed| SyntheticImage::new(ImageKind::Mixed, seed).rgb(72, 72))
        .collect();

    let mut session = engine.session();
    session.process(&frames[0]).unwrap();
    let ptrs = session.scratch_ptrs();
    for (i, frame) in frames.iter().enumerate().skip(1) {
        let streamed = session.process(frame).unwrap().clone();
        assert_eq!(
            session.scratch_ptrs(),
            ptrs,
            "frame {i} must reuse the session buffers"
        );
        let (one_shot, _) = engine.run_image(frame).unwrap();
        assert_eq!(streamed, one_shot, "frame {i} must match the one-shot path");
    }
    assert_eq!(session.frames(), frames.len());
    assert_eq!(
        session.frame_reallocs(),
        0,
        "no per-frame block-buffer reallocation"
    );
}
