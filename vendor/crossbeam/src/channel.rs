//! Offline stand-in for `crossbeam-channel`: multi-producer
//! multi-consumer FIFO channels over a mutex-guarded deque. The surface
//! kept API-compatible with the real crate: [`bounded`] / [`unbounded`],
//! [`Sender::send`] (blocking when a bounded channel is full) and
//! [`Receiver::recv`] (blocking while the channel is empty, erroring once
//! every sender is gone and the queue has drained). The pipelined
//! session feeds its worker pool through an [`unbounded`] channel and
//! applies back-pressure at *frame* granularity itself (its bounded
//! in-flight window), so the task queue never holds more than
//! `capacity × workers` band entries.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Sending on a channel whose receivers have all been dropped; carries
/// the rejected message back to the caller.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Receiving on a channel that is empty with every sender dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    /// `None` = unbounded.
    cap: Option<usize>,
    /// Signals receivers: a message arrived or the last sender left.
    not_empty: Condvar,
    /// Signals senders: a slot freed up or the last receiver left.
    not_full: Condvar,
}

/// The sending half; clone freely for multiple producers.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half; clone freely for multiple consumers (each message
/// is delivered to exactly one receiver).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Creates a channel that holds at most `cap` queued messages; `send`
/// blocks while the channel is full.
///
/// # Panics
///
/// Panics on `cap == 0`: real `crossbeam-channel` turns that into a
/// rendezvous channel (send completes when a receiver is ready), which
/// this queue-based stub cannot express — better a loud divergence than
/// a silent permanent deadlock.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "rendezvous channels (cap 0) are not stubbed");
    channel(Some(cap))
}

/// Creates a channel with an unbounded queue; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

impl<T> Sender<T> {
    /// Enqueues `msg`, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// [`SendError`] (returning the message) once every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.chan.state.lock().expect("channel lock poisoned");
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.chan.cap {
                Some(cap) if state.queue.len() >= cap => {
                    state = self
                        .chan
                        .not_full
                        .wait(state)
                        .expect("channel lock poisoned");
                }
                _ => break,
            }
        }
        state.queue.push_back(msg);
        drop(state);
        self.chan.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan
            .state
            .lock()
            .expect("channel lock poisoned")
            .senders += 1;
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.chan.state.lock().expect("channel lock poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Wake receivers parked on an empty queue so they observe the
            // disconnect.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next message, blocking while the channel is empty.
    ///
    /// # Errors
    ///
    /// [`RecvError`] once the queue is empty and every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.chan.state.lock().expect("channel lock poisoned");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .chan
                .not_empty
                .wait(state)
                .expect("channel lock poisoned");
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan
            .state
            .lock()
            .expect("channel lock poisoned")
            .receivers += 1;
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.chan.state.lock().expect("channel lock poisoned");
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            // Wake senders parked on a full queue so they observe the
            // disconnect.
            self.chan.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn fifo_across_threads_mpmc() {
        let (tx, rx) = unbounded::<usize>();
        let consumed = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let rx = rx.clone();
                let consumed = consumed.clone();
                s.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        consumed.fetch_add(v, Ordering::SeqCst);
                    }
                });
            }
            for v in 1..=100usize {
                tx.send(v).unwrap();
            }
            drop(tx);
        });
        assert_eq!(consumed.load(Ordering::SeqCst), 5050);
    }

    #[test]
    fn bounded_send_applies_backpressure() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        // The second send must park until the receiver frees a slot.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn disconnects_are_observable() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
        let (tx, rx) = unbounded::<u8>();
        tx.send(3).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    /// A receiver parked inside `recv` on an empty queue must be woken
    /// when the last sender is dropped from another thread — not stay
    /// parked forever waiting for a message that can no longer arrive.
    #[test]
    fn sender_dropped_while_receiver_parked_in_recv() {
        let (tx, rx) = unbounded::<u8>();
        let waiter = std::thread::spawn(move || rx.recv());
        // Give the receiver time to park on `not_empty`.
        std::thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(waiter.join().unwrap(), Err(RecvError));
    }

    /// A sender parked inside `send` on a full bounded channel must be
    /// woken when the last receiver is dropped, and get its message back
    /// in the `SendError` rather than losing it.
    #[test]
    fn receiver_dropped_while_sender_parked_in_send() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(1).unwrap();
        let sender = std::thread::spawn(move || tx.send(2));
        // Give the sender time to park on `not_full`.
        std::thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert_eq!(sender.join().unwrap(), Err(SendError(2)));
    }

    /// Abrupt worker death: a thread that panics while holding a Sender
    /// clone still runs the Sender's `Drop`, so parked receivers observe
    /// the disconnect exactly as on a clean exit. This is the invariant
    /// the supervised pipeline's respawn path leans on.
    #[test]
    fn panicking_sender_thread_still_disconnects_receivers() {
        let (tx, rx) = unbounded::<u8>();
        let worker = std::thread::spawn(move || {
            tx.send(9).unwrap();
            panic!("simulated worker death");
        });
        assert_eq!(rx.recv(), Ok(9));
        assert!(worker.join().is_err(), "worker must have panicked");
        // Queue drained, every sender gone (unwound): recv must error,
        // not hang.
        assert_eq!(rx.recv(), Err(RecvError));
    }

    /// Disconnect only fires once the *last* clone drops: with one
    /// sender clone dead (worker crashed) and one alive, receivers keep
    /// receiving; the channel errors only after the survivor leaves too.
    #[test]
    fn disconnect_requires_every_sender_clone_to_drop() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        let crashed = std::thread::spawn(move || {
            drop(tx2); // abrupt death of one producer
        });
        crashed.join().unwrap();
        tx.send(5).unwrap();
        assert_eq!(rx.recv(), Ok(5));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    /// Several senders parked on a full bounded channel: each slot the
    /// receiver frees must wake a parked sender (no lost wakeups), and
    /// every message must arrive exactly once.
    #[test]
    fn bounded_wakeups_drain_multiple_parked_senders() {
        let (tx, rx) = bounded::<usize>(1);
        tx.send(0).unwrap();
        let senders: Vec<_> = (1..=4)
            .map(|v| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(v).unwrap())
            })
            .collect();
        // Let all four park on the full channel.
        std::thread::sleep(Duration::from_millis(20));
        drop(tx);
        let mut got = Vec::new();
        for _ in 0..5 {
            got.push(rx.recv().unwrap());
        }
        for s in senders {
            s.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    /// A receiver clone dying abruptly must not disconnect senders while
    /// another receiver is still alive and consuming.
    #[test]
    fn disconnect_requires_every_receiver_clone_to_drop() {
        let (tx, rx) = bounded::<u8>(1);
        let rx2 = rx.clone();
        drop(rx2); // abrupt death of one consumer
        tx.send(8).unwrap();
        assert_eq!(rx.recv(), Ok(8));
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }
}
