//! High-level eCNN system API: the block-based inference pipeline end to
//! end (paper Fig. 3 / Fig. 12), behind one backend-agnostic entry point.
//!
//! [`Engine::builder`] assembles a machine fluently — model spec →
//! quantization → block size → real-time spec → power/DRAM models — and
//! [`Engine`] can then:
//!
//! * stream real images through the bit-exact simulator with block
//!   partitioning, overlap recomputation and stitching, reusing buffers
//!   across frames ([`Engine::session`] / [`Session::process`]);
//! * produce frame-rate / bandwidth / power reports for any output
//!   resolution ([`Engine::system_report`]).
//!
//! The same workload runs on every comparison flow through the
//! [`Backend`] trait (`ecnn-baselines` implements it for the frame-based,
//! fused-layer, TPU and Diffy flows), so eCNN and the paper's baselines
//! share a single reporting surface. [`ShardedBackend`] wraps any backend
//! and partitions a frame's block grid across worker threads — see
//! [`sharded`] — and [`AsyncSession`] pipelines whole frame queues over a
//! persistent worker pool with poll-based tickets — see [`pipe`].
//!
//! # Example
//!
//! ```
//! use ecnn_core::engine::Engine;
//! use ecnn_model::ernet::{ErNetSpec, ErNetTask};
//! use ecnn_model::RealTimeSpec;
//! use ecnn_tensor::{ImageKind, SyntheticImage};
//!
//! let engine = Engine::builder()
//!     .ernet(ErNetSpec::new(ErNetTask::Dn, 3, 1, 0))
//!     .block(128)
//!     .realtime(RealTimeSpec::UHD30)
//!     .build()
//!     .unwrap();
//!
//! // Analytical frame report at the real-time target.
//! let report = engine.system_report();
//! assert!(report.frame.fps >= 30.0);
//!
//! // Streaming inference: buffers are allocated once per session.
//! let mut session = engine.session();
//! for seed in 0..2 {
//!     let frame = SyntheticImage::new(ImageKind::Mixed, seed).rgb(128, 128);
//!     let out = session.process(&frame).unwrap();
//!     assert_eq!(out.shape(), (3, 128, 128));
//! }
//! assert_eq!(session.frames(), 2);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
pub mod config;
pub mod engine;
pub mod faults;
mod json;
pub mod pipe;
pub mod pipeline;
pub mod report;
pub mod sharded;
pub mod supervise;
pub mod tune;

pub use config::{EngineConfig, EnvOverrides};
pub use ecnn_isa::verify::{VerifyMode, VerifyReport};
pub use ecnn_sim::{KernelVariant, Kernels, SimdLevel};
pub use engine::{
    Backend, EcnnBackend, Engine, EngineBuilder, EngineError, FrameReport, ImageMismatch,
    ImageRunStats, Session, Workload,
};
pub use faults::{Fault, FaultKind, FaultPlan, FaultRule};
pub use pipe::{AsyncSession, FramePoll, FrameTicket};
pub use pipeline::PipelineError;
#[allow(deprecated)]
pub use pipeline::{Accelerator, Deployment};
pub use report::{SupervisionReport, SystemReport};
pub use sharded::{partition_rows, BlockParallel, ShardedBackend};
pub use supervise::{
    ladder, DegradeEvent, DegradeRung, FailureClass, SupervisorCounters, SupervisorPolicy,
    SupervisorStats,
};
pub use tune::{TuneOptions, TuneReport, TuneSpace, TuningRecord};
