//! FBISA — the feature-block instruction set architecture (paper Section 5).
//!
//! FBISA is a coarse-grained SIMD ISA whose operands are *block buffers*:
//! one instruction convolves a whole feature block. The crate provides:
//!
//! * [`instr`] — opcodes (`CONV`, `ER`, `UPX2`, `DNX2`, `CONV1`), named
//!   feature operands (`src`/`dst`/`srcS` over block buffers and the `DI`/
//!   `DO` virtual FIFO buffers), per-instruction Q-format attributes, and
//!   leaf-module accounting (at most [`instr::MAX_LEAF_MODULES`] per
//!   instruction).
//! * [`program`] — an instruction sequence plus block geometry and I/O
//!   transforms; `Display` renders the paper's named-operand assembly
//!   (Fig. 18).
//! * [`coding`] — bit-level I/O and the JPEG-style DC Huffman entropy coder
//!   used for parameter compression (Section 5.2, Fig. 11).
//! * [`params`] — quantized model parameters ([`params::QuantizedModel`])
//!   and the 21-bitstream packed parameter format with byte-aligned
//!   decoding-restart segments.
//! * [`mod@compile`] — the compiler from `ecnn-model` IR to an FBISA program
//!   with block-buffer allocation, wide-channel splitting, upsampler /
//!   downsampler fusion and partial-sum chaining via `srcS`.
//! * [`mod@verify`] — a static program verifier: independent plane
//!   shape/lifetime/placement re-derivation, fixed-point interval analysis
//!   proving the accumulators cannot overflow, and ranked diagnostics
//!   ([`verify::Diagnostic`]) covering hard errors and lints.
//!
//! # Example: the six-line DnERNet program of Fig. 18
//!
//! ```
//! use ecnn_isa::compile::compile;
//! use ecnn_isa::params::QuantizedModel;
//! use ecnn_model::ernet::{ErNetSpec, ErNetTask};
//!
//! let model = ErNetSpec::new(ErNetTask::Dn, 3, 1, 0).build().unwrap();
//! let qm = QuantizedModel::uniform(&model);
//! let compiled = compile(&qm, 128).unwrap();
//! assert_eq!(compiled.program.instructions.len(), 6);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
pub mod coding;
pub mod compile;
pub mod instr;
pub mod params;
pub mod program;
// The module proving accumulator bounds must not itself contain
// unchecked arithmetic; its interval math is all i128 + explicit
// checked/guarded shifts. Test fixtures are exempt.
#[cfg_attr(not(test), deny(clippy::arithmetic_side_effects))]
pub mod verify;

pub use compile::{compile, CompileError};
pub use instr::{FeatLoc, Instruction, Opcode, QSpec};
pub use params::{LayerParams, PackedParams, QuantizedModel};
pub use program::Program;
pub use verify::{verify, DiagCode, Diagnostic, Severity, VerifyMode, VerifyReport};
