//! Deterministic band-granular fault injection: the seeded, serializable
//! [`FaultPlan`] the supervision layer ([`crate::supervise`]) is proven
//! against.
//!
//! Production serving needs the failure paths — retry, respawn, deadline
//! resubmission, kernel degradation — exercised as rigorously as the
//! success path, and reproducibly: a flaky chaos test is worse than none.
//! A `FaultPlan` injects three failure classes at band granularity,
//! purely as a function of *where* the band sits, never of wall-clock or
//! thread scheduling:
//!
//! * [`FaultKind::Panic`] — the worker thread panics before touching the
//!   band (exercises worker respawn and re-dispatch),
//! * [`FaultKind::Delay`] — the band stalls for a configured duration
//!   (exercises per-frame deadlines and straggler resubmission),
//! * [`FaultKind::Corrupt`] — the band reports a detected-corruption
//!   [`EngineError::Corrupt`](crate::engine::EngineError::Corrupt)
//!   instead of executing (exercises the degradation ladder; the band is
//!   never pasted, so successful frames stay bit-identical).
//!
//! # Determinism
//!
//! Every injection decision hashes `(seed, rule, frame, band, attempt)`
//! through a SplitMix64-style mixer and compares against the rule's
//! per-mille rate. Two runs of the same plan over the same stream make
//! identical decisions regardless of worker count or scheduling; a
//! `persistent` rule ignores the attempt counter, so retrying the same
//! band can never outrun it (that is what forces the supervisor down the
//! degradation ladder).
//!
//! # Grammar
//!
//! The plan serializes to a single line, also accepted by the
//! `ECNN_FAULTS` environment override:
//!
//! ```text
//! seed=<u64>;<kind>@<permille>[:frames=<a>..<b>][:band=<n>][:ms=<n>]
//!                              [:kernels=<name>][:layout=<coalesced|keyed>][:persistent]
//! ```
//!
//! e.g. `seed=42;panic@250;corrupt@1000:frames=0..8:kernels=simd:persistent`
//! — panic on 25% of band dispatches, and always report corruption for
//! frames 0–7 while the SIMD kernels are selected (so degrading off them
//! clears the fault). `off`, `none` and the empty string parse to the
//! empty plan. Rules are evaluated in order; the first one whose site
//! matches *and* whose dice land under the rate fires.
//!
//! The plan lives in [`EngineConfig`](crate::config::EngineConfig) and is
//! interrogated only by the supervision layer in `ecnn-core` — kernel
//! crates never see it (CI greps for that), and an engine whose plan is
//! empty skips injection entirely: one `Option` check per band dispatch.

use ecnn_sim::Kernels;
use std::fmt;
use std::time::Duration;

/// Failure class a [`FaultRule`] injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker thread panics before executing the band.
    Panic,
    /// The band stalls for [`FaultRule::delay_ms`] before executing.
    Delay,
    /// The band reports a detected-corruption error instead of executing.
    Corrupt,
}

impl FaultKind {
    /// Stable lowercase name, as used by the plan grammar.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Delay => "delay",
            FaultKind::Corrupt => "corrupt",
        }
    }

    /// Parses [`FaultKind::as_str`] (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "panic" => Some(FaultKind::Panic),
            "delay" => Some(FaultKind::Delay),
            "corrupt" => Some(FaultKind::Corrupt),
            _ => None,
        }
    }
}

/// Milliseconds a [`FaultKind::Delay`] rule stalls when the grammar names
/// no `ms=` qualifier.
pub const DEFAULT_DELAY_MS: u64 = 10;

/// One injection rule: a failure kind, a firing rate and the site filter
/// selecting which band dispatches it applies to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRule {
    /// What to inject.
    pub kind: FaultKind,
    /// Firing rate out of 1000 matching dispatches (`1000` = always).
    pub rate_permille: u16,
    /// Frame range `[start, end)` the rule applies to; `end == None`
    /// leaves it open.
    pub frames: (usize, Option<usize>),
    /// Restrict to one band index of the frame's partition (`None` =
    /// every band).
    pub band: Option<usize>,
    /// Stall duration for [`FaultKind::Delay`] rules.
    pub delay_ms: u64,
    /// Restrict to dispatches running this kernel family — a
    /// kernel-scoped corruption clears once the supervisor degrades off
    /// the family, which is what lets a ladder walk terminate.
    pub kernels: Option<Kernels>,
    /// Restrict to dispatches running the coalesced (`true`) or keyed
    /// (`false`) plane layout; scopes faults to one rung of the
    /// layout-degradation step.
    pub layout: Option<bool>,
    /// Ignore the attempt counter in the dice: the fault re-fires on
    /// every retry of the same band (until a scope qualifier stops
    /// matching).
    pub persistent: bool,
}

impl FaultRule {
    /// A rule of `kind` firing on `rate_permille`/1000 of all dispatches.
    pub fn new(kind: FaultKind, rate_permille: u16) -> Self {
        Self {
            kind,
            rate_permille: rate_permille.min(1000),
            frames: (0, None),
            band: None,
            delay_ms: DEFAULT_DELAY_MS,
            kernels: None,
            layout: None,
            persistent: false,
        }
    }

    /// Whether the rule's site filter matches this dispatch.
    fn matches(&self, frame: usize, band: usize, kernels: Kernels, coalesced: bool) -> bool {
        let (start, end) = self.frames;
        frame >= start
            && end.is_none_or(|e| frame < e)
            && self.band.is_none_or(|b| b == band)
            && self.kernels.is_none_or(|k| k == kernels)
            && self.layout.is_none_or(|c| c == coalesced)
    }
}

impl fmt::Display for FaultRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.kind.as_str(), self.rate_permille)?;
        match self.frames {
            (0, None) => {}
            (start, Some(end)) => write!(f, ":frames={start}..{end}")?,
            (start, None) => write!(f, ":frames={start}..")?,
        }
        if let Some(b) = self.band {
            write!(f, ":band={b}")?;
        }
        if self.kind == FaultKind::Delay && self.delay_ms != DEFAULT_DELAY_MS {
            write!(f, ":ms={}", self.delay_ms)?;
        }
        if let Some(k) = self.kernels {
            write!(f, ":kernels={}", k.as_str())?;
        }
        if let Some(c) = self.layout {
            write!(f, ":layout={}", if c { "coalesced" } else { "keyed" })?;
        }
        if self.persistent {
            write!(f, ":persistent")?;
        }
        Ok(())
    }
}

/// The injection decision for one band dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Panic the worker thread.
    Panic,
    /// Stall for the duration, then execute normally.
    Delay(Duration),
    /// Report detected corruption instead of executing.
    Corrupt,
}

/// A seeded, serializable set of [`FaultRule`]s. The empty plan (the
/// default) injects nothing and costs nothing on the hot path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every injection decision.
    pub seed: u64,
    /// Rules, evaluated in order; the first firing rule wins.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// A plan with one rule.
    pub fn single(seed: u64, rule: FaultRule) -> Self {
        Self {
            seed,
            rules: vec![rule],
        }
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Parses the [module-level grammar](self). `""`, `"off"` and
    /// `"none"` yield the empty plan.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed clause.
    pub fn parse(text: &str) -> Result<Self, String> {
        let text = text.trim();
        if text.is_empty() || text.eq_ignore_ascii_case("off") || text.eq_ignore_ascii_case("none")
        {
            return Ok(Self::default());
        }
        let mut plan = Self::default();
        for clause in text.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(seed) = clause.strip_prefix("seed=") {
                plan.seed = seed
                    .parse()
                    .map_err(|_| format!("bad seed {seed:?} (want u64)"))?;
                continue;
            }
            plan.rules.push(parse_rule(clause)?);
        }
        Ok(plan)
    }

    /// The injection decision for one band dispatch, as a pure function
    /// of the site — identical across runs, worker counts and schedules.
    /// `attempt` is the band's 1-based dispatch counter; `kernels` and
    /// `coalesced` describe the execution rung the dispatch runs on.
    pub fn roll(
        &self,
        frame: usize,
        band: usize,
        attempt: u32,
        kernels: Kernels,
        coalesced: bool,
    ) -> Option<Fault> {
        for (index, rule) in self.rules.iter().enumerate() {
            if !rule.matches(frame, band, kernels, coalesced) {
                continue;
            }
            let att = if rule.persistent {
                0
            } else {
                u64::from(attempt)
            };
            let mut h = splitmix64(self.seed ^ 0xECC5_FA17_5EED_0001);
            h = splitmix64(h ^ (frame as u64));
            h = splitmix64(h ^ ((band as u64) << 8) ^ att);
            h = splitmix64(h ^ (index as u64));
            if h % 1000 < u64::from(rule.rate_permille) {
                return Some(match rule.kind {
                    FaultKind::Panic => Fault::Panic,
                    FaultKind::Delay => Fault::Delay(Duration::from_millis(rule.delay_ms)),
                    FaultKind::Corrupt => Fault::Corrupt,
                });
            }
        }
        None
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "off");
        }
        write!(f, "seed={}", self.seed)?;
        for rule in &self.rules {
            write!(f, ";{rule}")?;
        }
        Ok(())
    }
}

fn parse_rule(clause: &str) -> Result<FaultRule, String> {
    let mut parts = clause.split(':');
    let head = parts.next().expect("split yields at least one part");
    let (kind, rate) = head
        .split_once('@')
        .ok_or_else(|| format!("bad rule {head:?} (want kind@permille)"))?;
    let kind = FaultKind::parse(kind).ok_or_else(|| format!("unknown fault kind {kind:?}"))?;
    let rate: u16 = rate
        .parse()
        .ok()
        .filter(|&r| r <= 1000)
        .ok_or_else(|| format!("bad rate {rate:?} (want 0..=1000)"))?;
    let mut rule = FaultRule::new(kind, rate);
    for qual in parts {
        match qual.split_once('=') {
            None if qual.eq_ignore_ascii_case("persistent") => rule.persistent = true,
            Some(("frames", range)) => {
                let (start, end) = range
                    .split_once("..")
                    .ok_or_else(|| format!("bad frames range {range:?} (want a..b)"))?;
                let start = start
                    .parse()
                    .map_err(|_| format!("bad frames start {start:?}"))?;
                let end = if end.is_empty() {
                    None
                } else {
                    Some(end.parse().map_err(|_| format!("bad frames end {end:?}"))?)
                };
                if end.is_some_and(|e| e <= start) {
                    return Err(format!("empty frames range {range:?}"));
                }
                rule.frames = (start, end);
            }
            Some(("band", b)) => {
                rule.band = Some(b.parse().map_err(|_| format!("bad band {b:?}"))?);
            }
            Some(("ms", ms)) => {
                rule.delay_ms = ms.parse().map_err(|_| format!("bad ms {ms:?}"))?;
            }
            Some(("kernels", k)) => {
                rule.kernels =
                    Some(Kernels::parse(k).ok_or_else(|| format!("unknown kernels {k:?}"))?);
            }
            Some(("layout", l)) => {
                rule.layout = Some(match l.to_ascii_lowercase().as_str() {
                    "coalesced" => true,
                    "keyed" => false,
                    _ => return Err(format!("unknown layout {l:?} (want coalesced|keyed)")),
                });
            }
            _ => return Err(format!("unknown qualifier {qual:?}")),
        }
    }
    Ok(rule)
}

/// SplitMix64 finalizer: the PRNG behind every injection decision (the
/// vendored `rand` stub uses the same mixer for seeding).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips() {
        for text in [
            "seed=42;panic@250",
            "seed=7;delay@400:ms=25;corrupt@1000:frames=2..8:band=1:kernels=simd:persistent",
            "seed=1;corrupt@1000:frames=3..:layout=coalesced",
            "seed=0;panic@1000:persistent",
        ] {
            let plan = FaultPlan::parse(text).unwrap();
            let printed = plan.to_string();
            assert_eq!(FaultPlan::parse(&printed).unwrap(), plan, "{text}");
            assert_eq!(printed, text, "canonical form is stable");
        }
        for empty in ["", "off", "none", "  OFF "] {
            assert!(FaultPlan::parse(empty).unwrap().is_empty(), "{empty:?}");
        }
        assert_eq!(FaultPlan::default().to_string(), "off");
    }

    #[test]
    fn grammar_rejects_malformed_clauses() {
        for bad in [
            "seed=x",
            "explode@10",
            "panic@1001",
            "panic@10:frames=5..2",
            "panic@10:frames=5",
            "delay@10:ms=abc",
            "corrupt@10:kernels=cuda",
            "corrupt@10:layout=diagonal",
            "panic@10:wat=1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn roll_is_deterministic_and_rate_bounded() {
        let plan = FaultPlan::parse("seed=9;panic@250").unwrap();
        let mut fired = 0usize;
        let total = 4000usize;
        for i in 0..total {
            let a = plan.roll(i, i % 4, 1, Kernels::Simd, true);
            let b = plan.roll(i, i % 4, 1, Kernels::Simd, true);
            assert_eq!(a, b, "same site must roll the same");
            fired += usize::from(a.is_some());
        }
        // 25% nominal rate: accept a generous band, determinism means
        // this can never flake.
        let rate = fired as f64 / total as f64;
        assert!((0.18..0.32).contains(&rate), "observed rate {rate}");
        // Rate 0 never fires; rate 1000 always fires.
        let never = FaultPlan::parse("seed=9;panic@0").unwrap();
        let always = FaultPlan::parse("seed=9;corrupt@1000").unwrap();
        for i in 0..64 {
            assert_eq!(never.roll(i, 0, 1, Kernels::Simd, true), None);
            assert_eq!(
                always.roll(i, 0, 1, Kernels::Simd, true),
                Some(Fault::Corrupt)
            );
        }
    }

    #[test]
    fn site_filters_scope_the_rule() {
        let plan =
            FaultPlan::parse("seed=3;corrupt@1000:frames=2..4:band=1:kernels=packed:layout=keyed")
                .unwrap();
        let hit = |frame, band, k, c| plan.roll(frame, band, 1, k, c).is_some();
        assert!(hit(2, 1, Kernels::Packed, false));
        assert!(hit(3, 1, Kernels::Packed, false));
        assert!(!hit(1, 1, Kernels::Packed, false), "below frame range");
        assert!(!hit(4, 1, Kernels::Packed, false), "past frame range");
        assert!(!hit(2, 0, Kernels::Packed, false), "wrong band");
        assert!(!hit(2, 1, Kernels::Simd, false), "wrong kernels");
        assert!(!hit(2, 1, Kernels::Packed, true), "wrong layout");
    }

    #[test]
    fn persistent_rules_ignore_the_attempt_counter() {
        // A 50% transient rule decides per attempt; the persistent twin
        // repeats its first decision forever.
        let transient = FaultPlan::parse("seed=11;delay@500").unwrap();
        let persistent = FaultPlan::parse("seed=11;delay@500:persistent").unwrap();
        let mut transient_varies = false;
        for band in 0..32 {
            let first = persistent.roll(0, band, 1, Kernels::Simd, true);
            for attempt in 2..6 {
                assert_eq!(
                    persistent.roll(0, band, attempt, Kernels::Simd, true),
                    first,
                    "persistent decision must not depend on attempt"
                );
                if transient.roll(0, band, attempt, Kernels::Simd, true)
                    != transient.roll(0, band, 1, Kernels::Simd, true)
                {
                    transient_varies = true;
                }
            }
        }
        assert!(transient_varies, "transient rules must re-roll per attempt");
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan::parse("seed=1;delay@1000:band=0;panic@1000").unwrap();
        assert_eq!(
            plan.roll(0, 0, 1, Kernels::Simd, true),
            Some(Fault::Delay(Duration::from_millis(DEFAULT_DELAY_MS)))
        );
        assert_eq!(plan.roll(0, 1, 1, Kernels::Simd, true), Some(Fault::Panic));
    }
}
