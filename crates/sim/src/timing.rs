//! Cycle-accurate frame timing (Section 6.1.1's instruction pipelining).
//!
//! Per block, the IDU decodes instruction *i+1*'s parameters while the CIU
//! computes instruction *i*; the per-instruction latency is therefore
//! `max(CIU(i), IDU(i+1))`. Blocks repeat the same program, so the pipeline
//! wraps around block boundaries (parameters are re-decoded per block via
//! the restart mechanism). DI/DO transfers ride the FIFO interfaces
//! concurrently with compute and are assumed DMA-overlapped — the paper's
//! "highly regular ... optimized in a deterministic way" DRAM access.

use crate::config::EcnnConfig;
use ecnn_isa::compile::CompiledProgram;
use ecnn_isa::instr::Opcode;
use ecnn_isa::program::Program;
use ecnn_model::{ChannelMode, Complexity, Model};
use serde::{Deserialize, Serialize};

/// Timing/traffic report for running one model over full frames.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FrameReport {
    /// Model name.
    pub model: String,
    /// Output frame width in pixels.
    pub width: usize,
    /// Output frame height in pixels.
    pub height: usize,
    /// Blocks per frame.
    pub blocks: usize,
    /// Pipelined cycles per block (steady state).
    pub cycles_per_block: u64,
    /// Cycles per frame.
    pub cycles_per_frame: u64,
    /// Seconds per frame at the configured clock.
    pub seconds_per_frame: f64,
    /// Achievable frames per second.
    pub fps: f64,
    /// Fraction of frame cycles with the LCONV3×3 engine busy.
    pub lconv3_busy: f64,
    /// Fraction of frame cycles with the LCONV1×1 engine busy.
    pub lconv1_busy: f64,
    /// Effective compute throughput in TOPS (hardware ops actually issued).
    pub achieved_tops: f64,
    /// DI bytes per frame (input blocks, including recomputed overlaps).
    pub di_bytes_per_frame: u64,
    /// DO bytes per frame.
    pub do_bytes_per_frame: u64,
    /// Sustained DRAM read bandwidth at the achieved frame rate, bytes/s.
    pub dram_read_bps: f64,
    /// Sustained DRAM write bandwidth at the achieved frame rate, bytes/s.
    pub dram_write_bps: f64,
    /// Measured NBR: (DI+DO traffic) / (output image bytes).
    pub nbr: f64,
    /// Measured NCR: hardware MACs per frame / intrinsic hardware MACs.
    pub ncr: f64,
    /// Parameter-memory bytes used by the packed streams.
    pub param_bytes: usize,
    /// Whether the packed parameters fit the configuration's memory.
    pub param_fits: bool,
}

impl FrameReport {
    /// Total DRAM bandwidth (read + write) at the achieved rate.
    pub fn dram_total_bps(&self) -> f64 {
        self.dram_read_bps + self.dram_write_bps
    }

    /// DRAM bandwidth if the processor is throttled to `fps` (e.g. a
    /// real-time target instead of the max achievable rate).
    pub fn dram_total_bps_at(&self, fps: f64) -> f64 {
        (self.di_bytes_per_frame + self.do_bytes_per_frame) as f64 * fps
    }

    /// Energy per frame in joules given an average power in watts.
    pub fn energy_per_frame_j(&self, avg_power_w: f64) -> f64 {
        avg_power_w * self.seconds_per_frame
    }
}

/// Per-block pipelined cycle count plus engine busy cycles.
fn block_schedule(program: &Program) -> (u64, u64, u64) {
    let n = program.instructions.len();
    let mut total = 0u64;
    let mut busy3 = 0u64;
    let mut busy1 = 0u64;
    for i in 0..n {
        let ciu = program.instructions[i].ciu_cycles();
        let idu_next = program.instructions[(i + 1) % n].idu_cycles();
        total += ciu.max(idu_next);
        match program.instructions[i].opcode {
            Opcode::Conv1 => busy1 += ciu,
            Opcode::Er => {
                busy3 += ciu;
                busy1 += ciu;
            }
            _ => busy3 += ciu,
        }
    }
    (total, busy3, busy1)
}

/// Simulates a full frame of `width × height` *output* pixels for the model
/// `compiled` was built from (needed for intrinsic-complexity accounting).
pub fn simulate_frame(
    compiled: &CompiledProgram,
    model: &Model,
    config: &EcnnConfig,
    width: usize,
    height: usize,
) -> FrameReport {
    let program = &compiled.program;
    let blocks = program.blocks_for_output(width, height);
    // Border blocks are narrower: FBISA's per-instruction block-size
    // attribute lets the host shorten the tile sweep at frame edges, so the
    // effective block count is fractional.
    let eff_blocks =
        (width as f64 / program.do_side as f64) * (height as f64 / program.do_side as f64);
    let (cycles_per_block, busy3, busy1) = block_schedule(program);
    let cycles_per_frame = (cycles_per_block as f64 * eff_blocks).round() as u64;
    let seconds = cycles_per_frame as f64 / config.clock_hz;
    let fps = 1.0 / seconds;

    // Hardware MACs issued per frame: every busy cycle engages the full
    // engine (the datapath has no partial-lane mode).
    let mac3 = (busy3 as f64 * config.lconv3_multipliers as f64 * eff_blocks) as u64;
    let mac1 = (busy1 as f64 * config.lconv1_multipliers as f64 * eff_blocks) as u64;
    let achieved_tops = (mac3 + mac1) as f64 * 2.0 / seconds / 1e12;

    let di = (program.di_bytes_per_block() as f64 * eff_blocks) as u64;
    let dout = (program.do_bytes_per_block() as f64 * eff_blocks) as u64;
    let out_image_bytes = (width * height * program.do_channels) as f64;
    let nbr = (di + dout) as f64 / out_image_bytes;

    let intrinsic =
        Complexity::of(model, ChannelMode::Hardware).macs_per_pixel * (width * height) as f64;
    let ncr = (mac3 + mac1) as f64 / intrinsic;

    let param_bytes = compiled.packed.total_bytes();
    FrameReport {
        model: program.name.clone(),
        width,
        height,
        blocks,
        cycles_per_block,
        cycles_per_frame,
        seconds_per_frame: seconds,
        fps,
        lconv3_busy: busy3 as f64 / cycles_per_block as f64,
        lconv1_busy: busy1 as f64 / cycles_per_block as f64,
        achieved_tops,
        di_bytes_per_frame: di,
        do_bytes_per_frame: dout,
        dram_read_bps: di as f64 * fps,
        dram_write_bps: dout as f64 * fps,
        nbr,
        ncr,
        param_bytes,
        param_fits: param_bytes <= config.param_memory_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecnn_isa::compile::compile;
    use ecnn_isa::params::QuantizedModel;
    use ecnn_model::ernet::{ErNetSpec, ErNetTask};

    fn build(task: ErNetTask, b: usize, r: usize, n: usize, xi: usize) -> (Model, CompiledProgram) {
        let m = ErNetSpec::new(task, b, r, n).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, xi).unwrap();
        (m, c)
    }

    #[test]
    fn dnernet_uhd30_is_realtime() {
        // Paper Fig. 19: DnERNet-B3R1N0 sustains UHD30 (33.3 ms/frame).
        let (m, c) = build(ErNetTask::Dn, 3, 1, 0, 128);
        let r = simulate_frame(&c, &m, &EcnnConfig::paper(), 3840, 2160);
        assert!(r.fps >= 30.0, "fps {}", r.fps);
        assert!(r.fps < 70.0, "fps {} suspiciously high", r.fps);
    }

    #[test]
    fn dnernet_uhd30_bandwidth_matches_fig21() {
        // Paper Fig. 21: 1.66 GB/s at UHD30 (NBR 2.2).
        let (m, c) = build(ErNetTask::Dn, 3, 1, 0, 128);
        let r = simulate_frame(&c, &m, &EcnnConfig::paper(), 3840, 2160);
        let bw = r.dram_total_bps_at(30.0);
        assert!((bw / 1e9 - 1.66).abs() < 0.15, "bw {} GB/s", bw / 1e9);
        assert!((r.nbr - 2.22).abs() < 0.2, "nbr {}", r.nbr);
    }

    #[test]
    fn sr4_uhd30_pick_is_realtime() {
        // SR4ERNet-B17R3N1 is the paper's UHD30 model.
        let (m, c) = build(ErNetTask::Sr4, 17, 3, 1, 128);
        let r = simulate_frame(&c, &m, &EcnnConfig::paper(), 3840, 2160);
        assert!(r.fps >= 30.0, "fps {}", r.fps);
    }

    #[test]
    fn sr4_hd30_pick_is_realtime_but_not_uhd() {
        let (m, c) = build(ErNetTask::Sr4, 34, 4, 0, 128);
        let cfg = EcnnConfig::paper();
        let hd = simulate_frame(&c, &m, &cfg, 1920, 1080);
        assert!(hd.fps >= 30.0, "HD fps {}", hd.fps);
        let uhd = simulate_frame(&c, &m, &cfg, 3840, 2160);
        assert!(uhd.fps < 30.0, "UHD fps {}", uhd.fps);
    }

    #[test]
    fn utilization_is_high_for_imaging_models() {
        let (m, c) = build(ErNetTask::Dn, 3, 1, 0, 128);
        let r = simulate_frame(&c, &m, &EcnnConfig::paper(), 3840, 2160);
        // CIU-bound: the 3x3 engine is busy nearly every cycle.
        assert!(r.lconv3_busy > 0.9, "busy3 {}", r.lconv3_busy);
        // ER cycles engage the 1x1 engine too (3 of 6 instructions).
        assert!(
            r.lconv1_busy > 0.2 && r.lconv1_busy < 0.9,
            "busy1 {}",
            r.lconv1_busy
        );
        assert!(r.achieved_tops > 30.0, "tops {}", r.achieved_tops);
    }

    #[test]
    fn er_heavy_models_use_lconv1_more() {
        let cfg = EcnnConfig::paper();
        let (ml, cl) = build(ErNetTask::Dn, 3, 1, 0, 128);
        let light = simulate_frame(&cl, &ml, &cfg, 1920, 1080);
        let (mh, ch) = build(ErNetTask::Dn, 6, 4, 0, 128);
        let heavy = simulate_frame(&ch, &mh, &cfg, 1920, 1080);
        assert!(heavy.lconv1_busy > light.lconv1_busy);
    }

    #[test]
    fn ncr_measured_matches_analytical() {
        let (m, c) = build(ErNetTask::Dn, 3, 1, 0, 128);
        let r = simulate_frame(&c, &m, &EcnnConfig::paper(), 3840, 2160);
        let analytical = ecnn_model::blockflow::ncr(&m, 128.0, ChannelMode::Hardware).unwrap();
        // Frame-level NCR includes border-block padding and 4x2-tile
        // rounding, so it sits slightly above the per-block analytical value.
        assert!(
            r.ncr >= analytical * 0.95 && r.ncr < analytical * 1.3,
            "measured {} vs analytical {}",
            r.ncr,
            analytical
        );
    }

    #[test]
    fn params_fit_for_paper_models() {
        for (task, b, r_, n) in [
            (ErNetTask::Dn, 3, 1, 0),
            (ErNetTask::Sr4, 17, 3, 1),
            (ErNetTask::Sr4, 34, 4, 0),
        ] {
            let (m, c) = build(task, b, r_, n, 128);
            let rep = simulate_frame(&c, &m, &EcnnConfig::paper(), 1920, 1080);
            assert!(
                rep.param_fits,
                "{task:?}-B{b}R{r_}N{n}: {} bytes of {}",
                rep.param_bytes,
                EcnnConfig::paper().param_memory_bytes,
            );
        }
    }

    #[test]
    fn deeper_models_are_slower() {
        let cfg = EcnnConfig::paper();
        let (m1, c1) = build(ErNetTask::Dn, 3, 1, 0, 128);
        let (m2, c2) = build(ErNetTask::Dn, 12, 2, 0, 128);
        let f1 = simulate_frame(&c1, &m1, &cfg, 1920, 1080);
        let f2 = simulate_frame(&c2, &m2, &cfg, 1920, 1080);
        assert!(f2.fps < f1.fps / 2.0);
    }
}
