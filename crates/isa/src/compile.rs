//! The FBISA compiler: lowers a [`QuantizedModel`] to a [`Program`] plus
//! packed parameters.
//!
//! Lowering rules (Section 5.1 and DESIGN.md §6):
//!
//! * 32ch→32ch CONV3×3 → one `CONV` instruction (one leaf-module).
//! * ERModule(Rm) → one `ER` instruction with `Rm` leaf-modules and
//!   `srcS = src` for the module residual.
//! * CONV3×3 + PixelShuffle → `UPX2` (pre-shuffle output groups written in
//!   shuffle order); wide inputs chain partial sums across `UPX2`
//!   instructions in the *shuffled* domain (valid because the shuffle is a
//!   linear reordering).
//! * CONV3×3 + Downsample(s) → `DNX2` with the pool applied after the final
//!   accumulation; consecutive model pools fold into `pool_factor`.
//! * Wide convolutions split into ≤4-leaf instructions: one output group at
//!   a time, input groups chunked by four with partial sums staged through
//!   a scratch tensor and accumulated via `srcS`.
//! * Residual connections become `srcS` operands on the first chunk.
//!
//! Block-buffer allocation is greedy first-fit over the three 512 KB
//! buffers with exact liveness; tensors that cannot fit (CV case studies,
//! SR tails) are placed with a `bb_overflow` flag recorded on the program.

use crate::instr::{FeatLoc, Instruction, Opcode, QSpec, LEAF_CH, MAX_LEAF_MODULES};
use crate::params::{LayerParams, LeafParams, PackedParams, QuantizedModel};
use crate::program::Program;
use ecnn_model::layer::{Activation, Op, SkipRef};
use ecnn_model::model::InferenceKind;
use ecnn_tensor::QFormat;
use std::fmt;

/// Strict per-buffer capacity of eCNN's block buffers (Table 2: 3×512 KB).
pub const BB_BYTES: usize = 512 * 1024;
/// Number of physical block buffers.
pub const BB_COUNT: usize = 3;

/// Compilation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The block geometry is infeasible (pyramid collapse, indivisible
    /// shuffle factor, …).
    Geometry(String),
    /// The model uses an op sequence the ISA cannot express.
    Unsupported(String),
    /// Parameter shapes are inconsistent.
    BadParams(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Geometry(m) => write!(f, "block geometry: {m}"),
            CompileError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
            CompileError::BadParams(m) => write!(f, "bad parameters: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// A compiled artifact: program, per-instruction leaf parameters (issue
/// order) and the packed 21-stream parameter image.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// The instruction stream and block metadata.
    pub program: Program,
    /// Leaf parameters per instruction (what the IDU distributes).
    pub leafs: Vec<Vec<LeafParams>>,
    /// Entropy-coded parameter memory image.
    pub packed: PackedParams,
}

/// Compiles `qm` for input blocks of side `xi` (image-domain side at `DI`;
/// for zero-padded models, the frame side).
///
/// # Errors
///
/// See [`CompileError`].
pub fn compile(qm: &QuantizedModel, xi: usize) -> Result<CompiledProgram, CompileError> {
    qm.check()
        .map_err(|(i, e)| CompileError::BadParams(format!("layer {i}: {e}")))?;
    Compiler::new(qm, xi)?.run()
}

/// Geometry walk respecting the model's inference kind.
fn geometry(qm: &QuantizedModel, xi: usize) -> Result<Vec<usize>, CompileError> {
    let model = &qm.model;
    let mut sides = Vec::with_capacity(model.len() + 1);
    sides.push(xi);
    for (i, layer) in model.layers().iter().enumerate() {
        let inp = *sides.last().expect("nonempty");
        let out = match layer.op {
            Op::Conv3x3 { .. } | Op::ErModule { .. } => {
                if model.inference() == InferenceKind::TruncatedPyramid {
                    if inp <= 2 {
                        return Err(CompileError::Geometry(format!(
                            "layer {i}: block collapses (side {inp})"
                        )));
                    }
                    inp - 2
                } else {
                    inp
                }
            }
            Op::Conv1x1 { .. } => inp,
            Op::PixelShuffle { factor } => inp * factor,
            Op::PixelUnshuffle { factor } | Op::Downsample { factor, .. } => {
                if inp % factor != 0 {
                    return Err(CompileError::Geometry(format!(
                        "layer {i}: side {inp} not divisible by {factor}"
                    )));
                }
                inp / factor
            }
        };
        sides.push(out);
    }
    Ok(sides)
}

/// A value slot: which chain position's tensor lives where.
#[derive(Clone, Copy, Debug, PartialEq)]
struct ValueInfo {
    loc: FeatLoc,
    side: usize,
    groups: usize,
    q: QFormat,
}

struct Compiler<'a> {
    qm: &'a QuantizedModel,
    sides: Vec<usize>,
    last_use: Vec<usize>,
    /// Live value per chain position.
    values: Vec<Option<ValueInfo>>,
    /// Bytes allocated per physical buffer.
    bb_used: [usize; BB_COUNT],
    /// Monotonic group-slot counter per buffer (unique bases).
    bb_slot: [u8; BB_COUNT],
    overflow: bool,
    /// Next virtual overflow buffer id.
    next_virtual: u8,
    instructions: Vec<Instruction>,
    leafs: Vec<Vec<LeafParams>>,
}

impl<'a> Compiler<'a> {
    fn new(qm: &'a QuantizedModel, xi: usize) -> Result<Self, CompileError> {
        let sides = geometry(qm, xi)?;
        let model = &qm.model;
        // last_use[p]: last layer index that reads chain position p.
        let mut last_use = vec![0usize; model.len() + 1];
        for (i, layer) in model.layers().iter().enumerate() {
            last_use[i] = last_use[i].max(i); // consumed as main input by layer i
            if let Some(skip) = layer.skip {
                let p = match skip {
                    SkipRef::Input => 0,
                    SkipRef::Layer(j) => j + 1,
                };
                last_use[p] = last_use[p].max(i);
            }
        }
        Ok(Self {
            qm,
            sides,
            last_use,
            values: vec![None; model.len() + 1],
            bb_used: [0; BB_COUNT],
            bb_slot: [0; BB_COUNT],
            overflow: false,
            next_virtual: BB_COUNT as u8,
            instructions: Vec::new(),
            leafs: Vec::new(),
        })
    }

    fn hw_groups(c: usize) -> usize {
        c.div_ceil(LEAF_CH)
    }

    /// Allocates a tensor of `groups` 32ch planes with side `side`.
    fn alloc(&mut self, side: usize, groups: usize, q: QFormat) -> ValueInfo {
        let bytes = groups * LEAF_CH * side * side;
        for id in 0..BB_COUNT {
            if self.bb_used[id] + bytes <= BB_BYTES {
                self.bb_used[id] += bytes;
                let loc = FeatLoc::Bb {
                    id: id as u8,
                    group: self.bb_slot[id],
                };
                self.bb_slot[id] = self.bb_slot[id].wrapping_add(groups as u8);
                return ValueInfo {
                    loc,
                    side,
                    groups,
                    q,
                };
            }
        }
        // Relaxed placement: virtual buffer, flag recorded.
        self.overflow = true;
        let id = self.next_virtual;
        self.next_virtual += 1;
        ValueInfo {
            loc: FeatLoc::Bb { id, group: 0 },
            side,
            groups,
            q,
        }
    }

    fn free(&mut self, v: ValueInfo) {
        if let FeatLoc::Bb { id, .. } = v.loc {
            if (id as usize) < BB_COUNT {
                self.bb_used[id as usize] =
                    self.bb_used[id as usize].saturating_sub(v.groups * LEAF_CH * v.side * v.side);
            }
        }
    }

    /// Frees values whose last use is `layer_idx` or earlier.
    fn expire(&mut self, layer_idx: usize) {
        for p in 0..self.values.len() {
            if let Some(v) = self.values[p] {
                if self.last_use[p] <= layer_idx && !v.loc.is_virtual() {
                    self.free(v);
                    self.values[p] = None;
                }
            }
        }
    }

    fn skip_value(&self, layer: usize) -> Option<ValueInfo> {
        let skip = self.qm.model.layers()[layer].skip?;
        let p = match skip {
            SkipRef::Input => 0,
            SkipRef::Layer(j) => j + 1,
        };
        self.values[p]
    }

    fn run(mut self) -> Result<CompiledProgram, CompileError> {
        let model = &self.qm.model;
        let inference = model.inference();
        let in_q = self.qm.input_q;
        let mut input_unshuffle = None;

        // The model input arrives through DI.
        self.values[0] = Some(ValueInfo {
            loc: FeatLoc::di(),
            side: self.sides[0],
            groups: Self::hw_groups(model.in_channels()),
            q: in_q,
        });

        let n_layers = model.len();
        let mut i = 0usize;
        while i < n_layers {
            let layer = model.layers()[i];
            let src = self.values[i].ok_or_else(|| {
                CompileError::Unsupported(format!("layer {i}: input tensor not materialized"))
            })?;
            match layer.op {
                Op::PixelUnshuffle { factor } => {
                    if i != 0 {
                        return Err(CompileError::Unsupported(
                            "pixel unshuffle is only supported on the DI stream".into(),
                        ));
                    }
                    input_unshuffle = Some(factor);
                    let c = model.out_channels_at(i);
                    self.values[i + 1] = Some(ValueInfo {
                        loc: FeatLoc::di(),
                        side: self.sides[i + 1],
                        groups: Self::hw_groups(c),
                        q: in_q,
                    });
                    i += 1;
                }
                Op::PixelShuffle { .. } => {
                    return Err(CompileError::Unsupported(format!(
                        "layer {i}: standalone pixel shuffle (must follow a convolution)"
                    )));
                }
                Op::Downsample { .. } => {
                    return Err(CompileError::Unsupported(format!(
                        "layer {i}: standalone downsample (must follow a convolution)"
                    )));
                }
                Op::Conv3x3 { in_c, out_c, act } => {
                    // Fuse a following shuffle or any run of downsamples.
                    let mut consumed = 1usize;
                    let mut opcode = Opcode::Conv;
                    let mut pool = None;
                    let mut pool_factor = 1usize;
                    let mut shuffle = false;
                    if i + 1 < n_layers {
                        match model.layers()[i + 1].op {
                            Op::PixelShuffle { factor: 2 } => {
                                opcode = Opcode::Upx2;
                                shuffle = true;
                                consumed = 2;
                            }
                            Op::Downsample { kind, factor } => {
                                opcode = Opcode::Dnx2;
                                pool = Some(kind);
                                pool_factor = factor;
                                consumed = 2;
                                // Fold consecutive pools.
                                while i + consumed < n_layers {
                                    if let Op::Downsample { factor: f2, .. } =
                                        model.layers()[i + consumed].op
                                    {
                                        pool_factor *= f2;
                                        consumed += 1;
                                    } else {
                                        break;
                                    }
                                }
                            }
                            _ => {}
                        }
                    }
                    let out_pos = i + consumed;
                    self.lower_conv(
                        i,
                        out_pos,
                        src,
                        in_c,
                        out_c,
                        act,
                        opcode,
                        pool,
                        pool_factor,
                        shuffle,
                        inference,
                        false,
                    )?;
                    i = out_pos;
                }
                Op::Conv1x1 { in_c, out_c, act } => {
                    self.lower_conv(
                        i,
                        i + 1,
                        src,
                        in_c,
                        out_c,
                        act,
                        Opcode::Conv1,
                        None,
                        1,
                        false,
                        inference,
                        true,
                    )?;
                    i += 1;
                }
                Op::ErModule {
                    channels,
                    expansion,
                } => {
                    if expansion > MAX_LEAF_MODULES {
                        return Err(CompileError::Unsupported(format!(
                            "layer {i}: ER expansion {expansion} exceeds {MAX_LEAF_MODULES}"
                        )));
                    }
                    let p = self.params(i)?;
                    let out_side = self.sides[i + 1];
                    let is_last = i + 1 == n_layers;
                    let dst =
                        self.dest(i + 1, out_side, Self::hw_groups(channels), p.out_q, is_last);
                    let q = QSpec {
                        src: src.q,
                        dst: p.out_q,
                        src_s: Some(src.q),
                        mid: Some(p.mid_q),
                        w3: p.w3_q,
                        b3: p.b3_q,
                        w1: Some(p.w1_q),
                        b1: Some(p.b1_q),
                    };
                    let restart = self.instructions.len() as u32;
                    self.instructions.push(Instruction {
                        opcode: Opcode::Er,
                        inference,
                        src: src.loc,
                        dst: dst.loc,
                        src_s: Some(src.loc),
                        in_groups: 1,
                        out_groups: 1,
                        expansion,
                        in_size: (src.side, src.side),
                        out_size: (out_side, out_side),
                        relu: false,
                        pool: None,
                        pool_factor: 1,
                        q,
                        param_restart: restart,
                        layer: i,
                    });
                    self.leafs.push(er_leafs(p, expansion));
                    self.values[i + 1] = Some(dst);
                    self.expire(i);
                    i += 1;
                }
            }
        }

        let out_pos = n_layers;
        let out_val = self.values[out_pos]
            .ok_or_else(|| CompileError::Unsupported("model output was not produced".into()))?;
        debug_assert_eq!(out_val.loc, FeatLoc::dout());

        let kinds: Vec<(bool, bool)> = self
            .instructions
            .iter()
            .map(|ins| (ins.opcode.has_conv3x3(), ins.opcode.has_conv1x1()))
            .collect();
        let packed = PackedParams::pack(&self.leafs, &kinds);

        let program = Program {
            name: model.name().to_string(),
            instructions: self.instructions,
            inference,
            di_side: self.sides[0],
            di_channels: model.in_channels(),
            di_q: in_q,
            do_side: *self.sides.last().expect("nonempty"),
            do_channels: model.out_channels(),
            do_q: self
                .qm
                .layers
                .iter()
                .rev()
                .flatten()
                .next()
                .map(|p| p.out_q)
                .unwrap_or(in_q),
            input_unshuffle,
            bb_overflow: self.overflow,
        };
        program
            .check()
            .map_err(|(i, e)| CompileError::Unsupported(format!("instruction {i}: {e}")))?;
        Ok(CompiledProgram {
            program,
            leafs: self.leafs,
            packed,
        })
    }

    fn params(&self, layer: usize) -> Result<&'a LayerParams, CompileError> {
        self.qm.layers[layer]
            .as_ref()
            .ok_or_else(|| CompileError::BadParams(format!("layer {layer}: missing params")))
    }

    /// Destination for the value at `pos`: `DO` when it is the model output,
    /// otherwise a fresh buffer allocation.
    fn dest(
        &mut self,
        _pos: usize,
        side: usize,
        groups: usize,
        q: QFormat,
        is_output: bool,
    ) -> ValueInfo {
        if is_output {
            ValueInfo {
                loc: FeatLoc::dout(),
                side,
                groups,
                q,
            }
        } else {
            self.alloc(side, groups, q)
        }
    }

    /// Lowers a (possibly wide) convolution, including fused shuffle/pool.
    #[allow(clippy::too_many_arguments)]
    fn lower_conv(
        &mut self,
        layer: usize,
        out_pos: usize,
        src: ValueInfo,
        in_c: usize,
        out_c: usize,
        act: Activation,
        opcode: Opcode,
        pool: Option<ecnn_model::layer::PoolKind>,
        pool_factor: usize,
        shuffle: bool,
        inference: InferenceKind,
        is_1x1: bool,
    ) -> Result<(), CompileError> {
        let p = self.params(layer)?;
        let in_groups = Self::hw_groups(in_c);
        let conv_out_groups = Self::hw_groups(out_c);
        let out_side = self.sides[out_pos];
        // Conv-grid output side (pre-shuffle/pool).
        let conv_side = if shuffle {
            out_side / 2
        } else {
            out_side * pool_factor
        };
        let dst_groups = if shuffle {
            // Post-shuffle channel count = out_c / 4.
            Self::hw_groups(out_c / 4)
        } else {
            conv_out_groups
        };
        let is_last = out_pos == self.qm.model.len();
        let skip = self.skip_value(layer);
        if skip.is_some() && act == Activation::Relu {
            return Err(CompileError::Unsupported(format!(
                "layer {layer}: ReLU combined with a residual is ambiguous in the datapath"
            )));
        }
        let dst = self.dest(out_pos, out_side, dst_groups, p.out_q, is_last);

        if shuffle {
            // UPX2: one instruction per post-shuffle group and per input
            // group, accumulating in the shuffled domain.
            let post_groups = dst_groups;
            for pg in 0..post_groups {
                for (ci, ig) in (0..in_groups).enumerate() {
                    let first = ci == 0;
                    let src_s = if first {
                        skip.map(|s| offset_group(s.loc, pg))
                    } else {
                        Some(offset_group(dst.loc, pg))
                    };
                    let srcs_q = if first {
                        skip.map(|s| s.q)
                    } else {
                        Some(p.out_q)
                    };
                    let restart = self.instructions.len() as u32;
                    // Pre-shuffle conv groups for this post group: 4 planes
                    // (or fewer when out_c < 128).
                    let pre_lo = pg * 4;
                    let pre_hi = (pre_lo + 4).min(conv_out_groups);
                    let q = QSpec {
                        src: src.q,
                        dst: p.out_q,
                        src_s: srcs_q,
                        mid: None,
                        w3: p.w3_q,
                        b3: p.b3_q,
                        w1: None,
                        b1: None,
                    };
                    self.instructions.push(Instruction {
                        opcode: Opcode::Upx2,
                        inference,
                        src: offset_group(src.loc, ig),
                        dst: offset_group(dst.loc, pg),
                        src_s,
                        in_groups: 1,
                        out_groups: pre_hi - pre_lo,
                        expansion: 1,
                        in_size: (src.side, src.side),
                        out_size: (out_side, out_side),
                        relu: act == Activation::Relu,
                        pool: None,
                        pool_factor: 1,
                        q,
                        param_restart: restart,
                        layer,
                    });
                    let mut leaf_set = Vec::new();
                    for og in pre_lo..pre_hi {
                        leaf_set.push(conv_leaf(p, in_groups, og, ig, ig == 0, is_1x1));
                    }
                    self.leafs.push(leaf_set);
                }
            }
        } else {
            // Plain / pooled / 1x1 conv: per output group, chunk input groups
            // by MAX_LEAF_MODULES with scratch-staged partial sums.
            for og in 0..conv_out_groups {
                let chunks: Vec<Vec<usize>> = (0..in_groups)
                    .collect::<Vec<_>>()
                    .chunks(MAX_LEAF_MODULES)
                    .map(<[usize]>::to_vec)
                    .collect();
                let n_chunks = chunks.len();
                let mut scratch: Option<ValueInfo> = None;
                for (ci, chunk) in chunks.iter().enumerate() {
                    let last = ci == n_chunks - 1;
                    let (this_dst, this_pool, this_factor, this_opcode) = if last {
                        (offset_group(dst.loc, og), pool, pool_factor, opcode)
                    } else {
                        let s = match scratch {
                            Some(s) => s,
                            None => {
                                let s = self.alloc(conv_side, 1, p.out_q);
                                scratch = Some(s);
                                s
                            }
                        };
                        (
                            s.loc,
                            None,
                            1,
                            if is_1x1 { Opcode::Conv1 } else { Opcode::Conv },
                        )
                    };
                    let src_s = if ci == 0 {
                        skip.map(|s| offset_group(s.loc, og))
                    } else {
                        Some(scratch.expect("set in earlier chunk").loc)
                    };
                    let srcs_q = if ci == 0 {
                        skip.map(|s| s.q)
                    } else {
                        Some(p.out_q)
                    };
                    let restart = self.instructions.len() as u32;
                    let q = QSpec {
                        src: src.q,
                        dst: p.out_q,
                        src_s: srcs_q,
                        mid: None,
                        w3: if is_1x1 { p.w1_q } else { p.w3_q },
                        b3: if is_1x1 { p.b1_q } else { p.b3_q },
                        w1: if is_1x1 { Some(p.w1_q) } else { None },
                        b1: if is_1x1 { Some(p.b1_q) } else { None },
                    };
                    let out_size = if last {
                        (out_side, out_side)
                    } else {
                        (conv_side, conv_side)
                    };
                    self.instructions.push(Instruction {
                        opcode: this_opcode,
                        inference,
                        src: offset_group(src.loc, chunk[0]),
                        dst: this_dst,
                        src_s,
                        in_groups: chunk.len(),
                        out_groups: 1,
                        expansion: 1,
                        in_size: (src.side, src.side),
                        out_size,
                        relu: act == Activation::Relu && last,
                        pool: this_pool,
                        pool_factor: this_factor,
                        q,
                        param_restart: restart,
                        layer,
                    });
                    let mut leaf_set = Vec::new();
                    for &ig in chunk {
                        leaf_set.push(conv_leaf(p, in_groups, og, ig, ig == 0, is_1x1));
                    }
                    self.leafs.push(leaf_set);
                }
                if let Some(s) = scratch {
                    self.free(s);
                }
            }
        }
        self.values[out_pos] = Some(dst);
        self.expire(out_pos - 1);
        Ok(())
    }
}

fn offset_group(loc: FeatLoc, delta: usize) -> FeatLoc {
    loc.offset(delta)
}

/// Extracts the (og, ig) leaf of a conv layer's parameters. `with_bias`
/// attaches the output group's biases (only the ig==0 leaf carries them).
fn conv_leaf(
    p: &LayerParams,
    in_groups: usize,
    og: usize,
    ig: usize,
    with_bias: bool,
    is_1x1: bool,
) -> LeafParams {
    let mut leaf = LeafParams::zero();
    let in_hw = in_groups * LEAF_CH;
    if is_1x1 {
        for oc in 0..LEAF_CH {
            for ic in 0..LEAF_CH {
                leaf.w1[oc * LEAF_CH + ic] = p.w1[(og * LEAF_CH + oc) * in_hw + ig * LEAF_CH + ic];
            }
        }
        if with_bias {
            leaf.b1
                .copy_from_slice(&p.b1[og * LEAF_CH..(og + 1) * LEAF_CH]);
        }
    } else {
        for oc in 0..LEAF_CH {
            for ic in 0..LEAF_CH {
                for k in 0..9 {
                    leaf.w3[(oc * LEAF_CH + ic) * 9 + k] =
                        p.w3[((og * LEAF_CH + oc) * in_hw + ig * LEAF_CH + ic) * 9 + k];
                }
            }
        }
        if with_bias {
            leaf.b3
                .copy_from_slice(&p.b3[og * LEAF_CH..(og + 1) * LEAF_CH]);
        }
    }
    leaf
}

/// Extracts the per-plane leafs of an ER module: leaf `e` holds expansion
/// plane `e`'s 3×3 filters and its 32 columns of the 1×1 reduction.
fn er_leafs(p: &LayerParams, expansion: usize) -> Vec<LeafParams> {
    let wide = expansion * LEAF_CH;
    let mut out = Vec::with_capacity(expansion);
    for e in 0..expansion {
        let mut leaf = LeafParams::zero();
        for oc in 0..LEAF_CH {
            let plane_oc = e * LEAF_CH + oc;
            for ic in 0..LEAF_CH {
                for k in 0..9 {
                    leaf.w3[(oc * LEAF_CH + ic) * 9 + k] = p.w3[(plane_oc * LEAF_CH + ic) * 9 + k];
                }
            }
        }
        leaf.b3
            .copy_from_slice(&p.b3[e * LEAF_CH..(e + 1) * LEAF_CH]);
        for oc in 0..LEAF_CH {
            for ic in 0..LEAF_CH {
                leaf.w1[oc * LEAF_CH + ic] = p.w1[oc * wide + e * LEAF_CH + ic];
            }
        }
        if e == 0 {
            leaf.b1.copy_from_slice(&p.b1[0..LEAF_CH]);
        }
        out.push(leaf);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecnn_model::ernet::{ErNetSpec, ErNetTask};
    use ecnn_model::zoo;

    fn compile_ernet(task: ErNetTask, b: usize, r: usize, n: usize, xi: usize) -> CompiledProgram {
        let m = ErNetSpec::new(task, b, r, n).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        compile(&qm, xi).unwrap()
    }

    #[test]
    fn dnernet_b3_is_six_instructions() {
        // Fig. 18: the six-layer DnERNet-B3R1N0 compiles to a 6-line program.
        let c = compile_ernet(ErNetTask::Dn, 3, 1, 0, 128);
        assert_eq!(c.program.instructions.len(), 6);
        let ops: Vec<Opcode> = c.program.instructions.iter().map(|i| i.opcode).collect();
        assert_eq!(
            ops,
            vec![
                Opcode::Conv,
                Opcode::Er,
                Opcode::Er,
                Opcode::Er,
                Opcode::Conv,
                Opcode::Conv
            ]
        );
        // First reads DI, last writes DO.
        assert_eq!(c.program.instructions[0].src, FeatLoc::di());
        assert_eq!(c.program.instructions[5].dst, FeatLoc::dout());
        // Block geometry: 128 -> 116 output.
        assert_eq!(c.program.di_side, 128);
        assert_eq!(c.program.do_side, 116);
        assert!(!c.program.bb_overflow, "DnERNet fits the 3x512KB buffers");
    }

    #[test]
    fn global_residual_uses_srcs() {
        let c = compile_ernet(ErNetTask::Dn, 3, 1, 0, 128);
        // Instruction 4 is the body-end conv with the global skip.
        let body_end = &c.program.instructions[4];
        assert!(body_end.src_s.is_some());
        // Its srcS must be the head conv's destination.
        assert_eq!(body_end.src_s.unwrap(), c.program.instructions[0].dst);
    }

    #[test]
    fn er_instructions_carry_self_residual() {
        let c = compile_ernet(ErNetTask::Dn, 2, 3, 1, 64);
        for ins in &c.program.instructions {
            if ins.opcode == Opcode::Er {
                assert_eq!(ins.src_s, Some(ins.src));
            }
        }
        // First module Rm = 4 (N=1), second Rm = 3.
        let ers: Vec<usize> = c
            .program
            .instructions
            .iter()
            .filter(|i| i.opcode == Opcode::Er)
            .map(|i| i.expansion)
            .collect();
        assert_eq!(ers, vec![4, 3]);
    }

    #[test]
    fn sr4_has_upx2_instructions_and_39_lines() {
        let c = compile_ernet(ErNetTask::Sr4, 34, 4, 0, 128);
        let n_up = c
            .program
            .instructions
            .iter()
            .filter(|i| i.opcode == Opcode::Upx2)
            .count();
        assert_eq!(n_up, 2);
        // head + 34 ER + bodyend + 2 UPX2 + tail = 39 (paper quotes 45 for
        // its exact variant; see EXPERIMENTS.md).
        assert_eq!(c.program.instructions.len(), 39);
        // Output block side: LR 128 -> 54 after 37 convs, x2 -> 108 -> conv
        // -> 106 -> x2 -> 212 -> tail conv -> 210.
        assert_eq!(c.program.do_side, 210);
    }

    #[test]
    fn dn12_unshuffles_on_di() {
        let c = compile_ernet(ErNetTask::Dn12, 8, 2, 5, 256);
        assert_eq!(c.program.input_unshuffle, Some(2));
        assert_eq!(c.program.di_side, 256);
        assert_eq!(c.program.di_channels, 3);
        // 256 image side -> 128 core side -> 11 convs -> 106 -> x2 = 212.
        assert_eq!(c.program.do_side, 212);
        // The tail is an UPX2 (12 -> 3 shuffle).
        assert_eq!(c.program.instructions.last().unwrap().opcode, Opcode::Upx2);
    }

    #[test]
    fn leaf_module_counts_match_parameter_cost() {
        let c = compile_ernet(ErNetTask::Dn, 3, 2, 0, 128);
        // head 1 + 3 ER x2 + bodyend 1 + tail 1 = 9 leafs.
        assert_eq!(c.program.total_leaf_modules(), 9);
        for (ins, leafs) in c.program.instructions.iter().zip(&c.leafs) {
            assert_eq!(ins.leaf_modules(), leafs.len());
        }
    }

    #[test]
    fn packed_params_unpack_to_compiled_leafs() {
        let c = compile_ernet(ErNetTask::Dn, 2, 2, 1, 96);
        for (i, want) in c.leafs.iter().enumerate() {
            let got = c.packed.unpack(i).unwrap();
            assert_eq!(&got, want, "instruction {i}");
        }
    }

    #[test]
    fn recognition_compiles_with_wide_channels() {
        let m = zoo::recognition(1000);
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, 224).unwrap();
        // Zero-padded: DI side == DO side pre-pooling chain; output is 7 (two
        // max pools folded 28 -> 7 ... wait: pools are folded into convs).
        assert_eq!(c.program.inference, InferenceKind::ZeroPadded);
        assert!(c.program.instructions.len() > 60, "wide convs split");
        // All instructions respect the leaf cap.
        for ins in &c.program.instructions {
            assert!(ins.leaf_modules() <= MAX_LEAF_MODULES);
        }
        // Classifier output: 1000 logits at 1x1 (pools fold 28 -> 1 onto the
        // final stage-3 convolution).
        assert_eq!(c.program.do_side, 1);
        assert_eq!(c.program.do_channels, 1000);
    }

    #[test]
    fn style_transfer_compiles_both_submodels() {
        let (enc, dec) = zoo::style_transfer();
        let qe = QuantizedModel::uniform(&enc);
        let qd = QuantizedModel::uniform(&dec);
        let ce = compile(&qe, 128).unwrap();
        // encoder: 128 -> 2 convs -> down x2 ... output at 1/4 res.
        assert_eq!(ce.program.di_side, 128);
        let cd = compile(&qd, ce.program.do_side).unwrap();
        assert!(cd.program.do_side > 0);
        for ins in ce
            .program
            .instructions
            .iter()
            .chain(&cd.program.instructions)
        {
            assert!(ins.leaf_modules() <= MAX_LEAF_MODULES);
        }
    }

    #[test]
    fn too_small_block_is_rejected() {
        let m = ErNetSpec::new(ErNetTask::Dn, 10, 1, 0).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        // 13 convs need side > 26.
        assert!(matches!(compile(&qm, 26), Err(CompileError::Geometry(_))));
        assert!(compile(&qm, 64).is_ok());
    }

    #[test]
    fn restart_indices_are_sequential() {
        let c = compile_ernet(ErNetTask::Sr2, 5, 2, 2, 96);
        for (i, ins) in c.program.instructions.iter().enumerate() {
            assert_eq!(ins.param_restart as usize, i);
        }
        assert_eq!(c.packed.segments.len(), c.program.instructions.len());
    }

    #[test]
    fn display_program_looks_like_fig18() {
        let c = compile_ernet(ErNetTask::Dn, 3, 1, 0, 128);
        let text = c.program.to_string();
        assert!(text.contains("CONV"));
        assert!(text.contains("ER"));
        assert!(text.contains("src=DI"));
        assert!(text.contains("dst=DO"));
        assert_eq!(text.lines().count(), 7); // header + 6 instructions
    }
}
