//! Computation and parameter accounting.
//!
//! The paper's budgets (Fig. 8, Table 2) count *hardware* operations: every
//! convolution runs on 32-channel leaf-modules, so a 3→32 head convolution
//! costs as much as a 32→32 one. [`ChannelMode`] selects between that
//! convention and the algorithmic (logical-channel) count used when quoting
//! model complexity in the literature (e.g. VDSR's 1.33 MOP/pixel).
//!
//! Operations are counted as `2 × MACs` (one multiply + one add), matching
//! the paper's TOPS arithmetic (81,920 multipliers × 2 × 250 MHz ≈ 41 TOPS).

use crate::layer::Op;
use crate::model::Model;
use serde::{Deserialize, Serialize};

/// Leaf-module channel width of the eCNN datapath.
pub const LEAF_CHANNELS: usize = 32;

/// Channel-count convention for complexity accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelMode {
    /// Logical channels as declared in the model.
    Algorithmic,
    /// Channels rounded up to multiples of the 32-wide leaf-module.
    Hardware,
}

impl ChannelMode {
    #[inline]
    fn round(self, c: usize) -> usize {
        match self {
            ChannelMode::Algorithmic => c,
            ChannelMode::Hardware => c.div_ceil(LEAF_CHANNELS) * LEAF_CHANNELS,
        }
    }
}

/// MACs per pixel (at the layer's own resolution) for one op.
pub fn op_macs_per_pixel(op: &Op, mode: ChannelMode) -> u64 {
    match *op {
        Op::Conv3x3 { in_c, out_c, .. } => (mode.round(in_c) * mode.round(out_c) * 9) as u64,
        Op::Conv1x1 { in_c, out_c, .. } => (mode.round(in_c) * mode.round(out_c)) as u64,
        Op::ErModule {
            channels,
            expansion,
        } => {
            let c = mode.round(channels);
            let wide = mode.round(channels * expansion);
            (c * wide * 9 + wide * c) as u64
        }
        _ => 0,
    }
}

/// Hardware parameter slots for one op (every leaf-module stores its full
/// 32×32×9 weights + 64 biases, regardless of logical channel use).
pub fn op_params(op: &Op, mode: ChannelMode) -> u64 {
    match *op {
        Op::Conv3x3 { in_c, out_c, .. } => {
            let (i, o) = (mode.round(in_c), mode.round(out_c));
            (i * o * 9 + o) as u64
        }
        Op::Conv1x1 { in_c, out_c, .. } => {
            let (i, o) = (mode.round(in_c), mode.round(out_c));
            (i * o + o) as u64
        }
        Op::ErModule {
            channels,
            expansion,
        } => {
            let c = mode.round(channels);
            let wide = mode.round(channels * expansion);
            (c * wide * 9 + wide + wide * c + c) as u64
        }
        _ => 0,
    }
}

/// Complexity summary for a model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Complexity {
    /// Per-layer MACs per *final output* pixel (layer cost scaled by the
    /// square of its resolution relative to the output).
    pub per_layer_macs: Vec<f64>,
    /// Total MACs per final output pixel.
    pub macs_per_pixel: f64,
    /// Total operations (2×MACs) per final output pixel, in KOP.
    pub kop_per_pixel: f64,
    /// Parameter count under the selected convention.
    pub params: u64,
}

impl Complexity {
    /// Computes the complexity of `model` under the given channel mode.
    ///
    /// Layer costs are referred to the *final output* resolution: a layer
    /// running at 1/s the output resolution contributes `macs/px / s²`.
    pub fn of(model: &Model, mode: ChannelMode) -> Self {
        let scales = model.scale_walk();
        let out_scale = model.output_scale();
        let mut per_layer = Vec::with_capacity(model.len());
        let mut total = 0.0;
        for (i, layer) in model.layers().iter().enumerate() {
            // Convs run at their output resolution = scales[i + 1].
            let rel = scales[i + 1] / out_scale;
            let macs = op_macs_per_pixel(&layer.op, mode) as f64 * rel * rel;
            per_layer.push(macs);
            total += macs;
        }
        let params = model.layers().iter().map(|l| op_params(&l.op, mode)).sum();
        Complexity {
            per_layer_macs: per_layer,
            macs_per_pixel: total,
            kop_per_pixel: total * 2.0 / 1000.0,
            params,
        }
    }

    /// Total operations per second required at `pixels_per_second` output
    /// throughput, in TOPS.
    pub fn tops_at(&self, pixels_per_second: f64) -> f64 {
        self.kop_per_pixel * 1000.0 * pixels_per_second / 1e12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, Layer};
    use crate::zoo;

    #[test]
    fn channel_rounding() {
        assert_eq!(ChannelMode::Hardware.round(3), 32);
        assert_eq!(ChannelMode::Hardware.round(32), 32);
        assert_eq!(ChannelMode::Hardware.round(33), 64);
        assert_eq!(ChannelMode::Algorithmic.round(3), 3);
    }

    #[test]
    fn vdsr_is_1_33_mop_per_pixel() {
        // Paper Section 2: VDSR demands 83 TOPS at Full HD 30 fps
        // => 1.33 MOP/pixel with algorithmic channels.
        let vdsr = zoo::vdsr();
        let c = Complexity::of(&vdsr, ChannelMode::Algorithmic);
        let mop = c.kop_per_pixel / 1000.0;
        assert!((mop - 1.33).abs() < 0.01, "VDSR {mop} MOP/px");
        // 83 TOPS at Full HD 30 fps.
        let tops = c.tops_at(1920.0 * 1080.0 * 30.0);
        assert!((tops - 83.0).abs() < 1.0, "VDSR {tops} TOPS");
    }

    #[test]
    fn ermodule_cost_matches_hand_calculation() {
        let op = Op::ErModule {
            channels: 32,
            expansion: 3,
        };
        // 32*96*9 + 96*32 = 27648 + 3072 = 30720
        assert_eq!(op_macs_per_pixel(&op, ChannelMode::Hardware), 30720);
        assert_eq!(op_macs_per_pixel(&op, ChannelMode::Algorithmic), 30720);
    }

    #[test]
    fn hardware_mode_rounds_rgb_head() {
        let op = Op::Conv3x3 {
            in_c: 3,
            out_c: 32,
            act: Activation::Relu,
        };
        assert_eq!(op_macs_per_pixel(&op, ChannelMode::Algorithmic), 3 * 32 * 9);
        assert_eq!(op_macs_per_pixel(&op, ChannelMode::Hardware), 32 * 32 * 9);
    }

    #[test]
    fn upsampled_layers_cost_less_per_output_pixel() {
        // conv at 1x, shuffle x2, conv at 2x; output scale = 2.
        let m = Model::new(
            "m",
            32,
            32,
            vec![
                Layer::new(Op::Conv3x3 {
                    in_c: 32,
                    out_c: 128,
                    act: Activation::None,
                }),
                Layer::new(Op::PixelShuffle { factor: 2 }),
                Layer::new(Op::Conv3x3 {
                    in_c: 32,
                    out_c: 32,
                    act: Activation::None,
                }),
            ],
        )
        .unwrap();
        let c = Complexity::of(&m, ChannelMode::Hardware);
        // First conv runs at 1/2 the output resolution: cost / 4.
        assert_eq!(c.per_layer_macs[0], (32 * 128 * 9) as f64 / 4.0);
        assert_eq!(c.per_layer_macs[1], 0.0);
        assert_eq!(c.per_layer_macs[2], (32 * 32 * 9) as f64);
    }

    #[test]
    fn params_hardware_vs_algorithmic() {
        let op = Op::Conv3x3 {
            in_c: 3,
            out_c: 3,
            act: Activation::None,
        };
        assert_eq!(op_params(&op, ChannelMode::Algorithmic), 3 * 3 * 9 + 3);
        assert_eq!(op_params(&op, ChannelMode::Hardware), 32 * 32 * 9 + 32);
    }
}
