//! Baseline inference flows and comparison accelerators.
//!
//! * [`framebased`] — the conventional layer-by-layer flow whose feature
//!   traffic Eq. (1) quantifies (the Section 2 motivation).
//! * [`fusion`] — the fused-layer line-buffer alternative (Alwani et al.):
//!   SRAM grows linearly with depth × width × channels.
//! * [`tpu`] — a SCALE-Sim-style output-stationary systolic-array model in
//!   the classical TPU configuration (Section 7.2's comparison).
//! * [`diffy`] — Diffy's activation-difference bit-sparsity compression
//!   applied to the frame-based flow, plus the published IDEAL/Diffy
//!   operating points used in Table 7.

pub mod diffy;
pub mod framebased;
pub mod fusion;
pub mod tpu;

pub use framebased::frame_based_feature_bandwidth;
pub use fusion::fused_line_buffer_bytes;
pub use tpu::{TpuConfig, TpuReport};
