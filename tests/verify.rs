//! The static verifier's contract, pinned from both sides:
//!
//! * **soundness** — programs the verifier admits execute cleanly, and the
//!   range-instrumented reference executor's observed per-instruction
//!   extrema stay inside the verifier's predicted intervals
//!   (`ExecTrace::check_against`);
//! * **completeness of rejection** — programs the verifier rejects with a
//!   hard error really are unrunnable: the plan or the executor rejects
//!   them too (or the executor would panic);
//! * **diagnostic stability** — every diagnostic code is pinned by a
//!   minimal hand-built program that triggers exactly it.

use ecnn_isa::compile::compile;
use ecnn_isa::instr::{FeatLoc, Instruction, Opcode, QSpec, LEAF_CH};
use ecnn_isa::params::{LeafParams, QuantizedModel};
use ecnn_isa::program::Program;
use ecnn_isa::verify::{verify, verify_compiled, DiagCode, VerifyMode};
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_model::model::InferenceKind;
use ecnn_repro::prelude::*;
use ecnn_sim::exec::{crosscheck_plan, execute_traced, quantize_input, BlockPlan, PlanePool};
use ecnn_tensor::{ImageKind, QFormat, SyntheticImage, Tensor};
use proptest::prelude::*;

// --- Hand-built single-conv fixture -----------------------------------

/// One leaf whose only tap is `w` at the 3×3 center of channel 0.
fn identity_leaf(w: i16) -> LeafParams {
    let mut leaf = LeafParams::zero();
    leaf.w3[4] = w; // [oc=0][ic=0][k=4]
    leaf
}

/// A minimal DI → DO single-CONV program (truncated pyramid, 16 → 14)
/// that verifies completely clean.
fn single_conv() -> (Program, Vec<Vec<LeafParams>>) {
    let dst_q = QFormat::signed(5);
    let ins = Instruction {
        opcode: Opcode::Conv,
        inference: InferenceKind::TruncatedPyramid,
        src: FeatLoc::di(),
        dst: FeatLoc::dout(),
        src_s: None,
        in_groups: 1,
        out_groups: 1,
        expansion: 1,
        in_size: (16, 16),
        out_size: (14, 14),
        relu: false,
        pool: None,
        pool_factor: 1,
        q: QSpec {
            src: QFormat::unsigned(8),
            dst: dst_q,
            src_s: None,
            mid: None,
            w3: QFormat::signed(7),
            b3: QFormat::signed(7),
            w1: None,
            b1: None,
        },
        param_restart: 0,
        layer: 0,
    };
    let program = Program {
        name: "single-conv".into(),
        instructions: vec![ins],
        inference: InferenceKind::TruncatedPyramid,
        di_side: 16,
        di_channels: 1,
        di_q: QFormat::unsigned(8),
        do_side: 14,
        do_channels: 1,
        do_q: dst_q,
        input_unshuffle: None,
        bb_overflow: false,
    };
    (program, vec![vec![identity_leaf(1)]])
}

fn codes(program: &Program, leafs: &[Vec<LeafParams>]) -> Vec<DiagCode> {
    verify(program, leafs)
        .diagnostics
        .iter()
        .map(|d| d.code)
        .collect()
}

/// True when the rejected program is also unrunnable in practice: the
/// plan constructor or the executor rejects it, or the executor panics.
fn unrunnable(program: &Program, leafs: &[Vec<LeafParams>]) -> bool {
    let Ok(plan) = BlockPlan::new(program, leafs) else {
        return true;
    };
    let input = Tensor::<i16>::zeros(program.di_channels, program.di_side, program.di_side);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut pool = PlanePool::new();
        execute_traced(&plan, &mut pool, &input).map(|_| ())
    }));
    !matches!(outcome, Ok(Ok(())))
}

#[test]
fn clean_fixture_is_clean() {
    let (p, l) = single_conv();
    let report = verify(&p, &l);
    assert!(
        report.is_clean(),
        "unexpected findings: {:?}",
        report.diagnostics
    );
    assert!(report.passes(VerifyMode::Strict));
    // Its predicted range is available for every instruction.
    assert!(report.ranges.iter().all(Option::is_some));
}

// --- One pinned regression per diagnostic code ------------------------

#[test]
fn code_leaf_mismatch() {
    // CONV writes one output group per instruction; declaring two is a
    // layout the leaf-module sweep cannot map.
    let (mut p, mut l) = single_conv();
    p.instructions[0].out_groups = 2;
    l[0].push(identity_leaf(1));
    let c = codes(&p, &l);
    assert!(c.contains(&DiagCode::LeafMismatch), "{c:?}");
    assert!(verify(&p, &l).has_errors());
}

#[test]
fn code_undef_operand() {
    let (mut p, l) = single_conv();
    p.instructions[0].src = FeatLoc::bb(3);
    let c = codes(&p, &l);
    assert!(c.contains(&DiagCode::UndefOperand), "{c:?}");
}

#[test]
fn code_shape_mismatch() {
    // Truncated-pyramid CONV shrinks 16 -> 14; declaring 16 claims pixels
    // the input block cannot produce.
    let (mut p, l) = single_conv();
    p.instructions[0].out_size = (16, 16);
    p.do_side = 16;
    let c = codes(&p, &l);
    assert!(c.contains(&DiagCode::ShapeMismatch), "{c:?}");
}

#[test]
fn code_alias_hazard() {
    // Second instruction convolves BB0 into BB0 in place: border reads of
    // later tiles see already-overwritten rows.
    let (mut p, mut l) = single_conv();
    let q5 = QFormat::signed(5);
    let mut head = p.instructions[0].clone();
    head.dst = FeatLoc::bb(0);
    let mut mid = head.clone();
    mid.src = FeatLoc::bb(0);
    mid.dst = FeatLoc::bb(0);
    mid.in_size = (14, 14);
    mid.out_size = (12, 12);
    mid.q.src = q5;
    let mut tail = mid.clone();
    tail.src = FeatLoc::bb(0);
    tail.dst = FeatLoc::dout();
    tail.in_size = (12, 12);
    tail.out_size = (10, 10);
    p.instructions = vec![head, mid, tail];
    p.do_side = 10;
    l = vec![l[0].clone(), vec![identity_leaf(1)], vec![identity_leaf(1)]];
    let c = codes(&p, &l);
    assert!(c.contains(&DiagCode::AliasHazard), "{c:?}");
    assert!(verify(&p, &l).has_errors());
}

#[test]
fn code_acc_overflow() {
    // Requantizing a Q15 accumulator up to Q120 needs a 105-bit left
    // shift — no i64 datapath holds that.
    let (mut p, l) = single_conv();
    let huge = QFormat::with_bits(true, 120, 8);
    p.instructions[0].q.dst = huge;
    p.do_q = huge;
    let c = codes(&p, &l);
    assert!(c.contains(&DiagCode::AccOverflow), "{c:?}");
    assert!(verify(&p, &l).has_errors());
}

#[test]
fn code_qformat_mismatch() {
    // srcS operand wired without declaring its format: the executor's
    // residual path would have no alignment to work with.
    let (mut p, l) = single_conv();
    p.instructions[0].src_s = Some(FeatLoc::di());
    let c = codes(&p, &l);
    assert!(c.contains(&DiagCode::QFormatMismatch), "{c:?}");
    assert!(verify(&p, &l).has_errors());
    assert!(unrunnable(&p, &l));
}

#[test]
fn code_zero_taps() {
    let (p, mut l) = single_conv();
    l[0][0] = LeafParams::zero();
    let report = verify(&p, &l);
    let c: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
    assert!(c.contains(&DiagCode::ZeroTaps), "{c:?}");
    // A lint, not an error: passes default mode, fails Strict.
    assert!(!report.has_errors());
    assert!(report.passes(VerifyMode::Lints));
    assert!(!report.passes(VerifyMode::Strict));
}

#[test]
fn code_dead_plane() {
    // First instruction computes a BB0 plane nobody ever reads.
    let (mut p, mut l) = single_conv();
    let mut dead = p.instructions[0].clone();
    dead.dst = FeatLoc::bb(0);
    let live = p.instructions[0].clone();
    p.instructions = vec![dead, live];
    l.push(l[0].clone());
    let c = codes(&p, &l);
    assert!(c.contains(&DiagCode::DeadPlane), "{c:?}");
    assert!(!verify(&p, &l).has_errors());
}

#[test]
fn code_redundant_requant() {
    // Accumulator already sits at the destination's fractional position
    // and its proven range never clamps: the requantization is a no-op.
    let (mut p, l) = single_conv();
    let wide = QFormat::with_bits(true, 15, 15);
    p.instructions[0].q.dst = wide;
    p.do_q = wide;
    let report = verify(&p, &l);
    let c: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
    assert!(c.contains(&DiagCode::RedundantRequant), "{c:?}");
    assert!(!report.has_errors());
}

#[test]
fn code_narrow_band() {
    // A zero-padded 2×2 block is narrower than the 3×3 footprint: every
    // output pixel is mostly padding.
    let (mut p, l) = single_conv();
    p.inference = InferenceKind::ZeroPadded;
    p.di_side = 2;
    p.do_side = 2;
    let ins = &mut p.instructions[0];
    ins.inference = InferenceKind::ZeroPadded;
    ins.in_size = (2, 2);
    ins.out_size = (2, 2);
    let c = codes(&p, &l);
    assert!(c.contains(&DiagCode::NarrowBand), "{c:?}");
    assert!(!verify(&p, &l).has_errors());
}

#[test]
fn code_plan_divergence() {
    // Tampering with the verifier's plane table makes the differential
    // cross-check against BlockPlan fire; untampered, the two agree.
    let m = ErNetSpec::new(ErNetTask::Dn, 3, 1, 0).build().unwrap();
    let qm = QuantizedModel::uniform(&m);
    let c = compile(&qm, 64).unwrap();
    let report = verify_compiled(&c);
    let plan = BlockPlan::new(&c.program, &c.leafs).unwrap();
    assert!(crosscheck_plan(&plan, &report).is_empty());
    let mut tampered = report.clone();
    tampered.planes[0].channels += 1;
    let diags = crosscheck_plan(&plan, &tampered);
    assert!(!diags.is_empty());
    assert!(diags.iter().all(|d| d.code == DiagCode::PlanDivergence));
}

// --- Rejected programs really are unrunnable --------------------------

#[test]
fn rejected_programs_misbehave() {
    // Leaf-set shorter than the instruction declares.
    let (p, mut l) = single_conv();
    l[0].clear();
    assert!(verify(&p, &l).has_errors());
    assert!(unrunnable(&p, &l));

    // Reading an operand nobody wrote.
    let (mut p, l) = single_conv();
    p.instructions[0].src = FeatLoc::bb(3);
    assert!(verify(&p, &l).has_errors());
    assert!(unrunnable(&p, &l));

    // Declared input block larger than the 16×16 DI plane that exists.
    let (mut p, l) = single_conv();
    p.instructions[0].in_size = (18, 18);
    p.instructions[0].out_size = (16, 16);
    p.do_side = 16;
    assert!(verify(&p, &l).has_errors());
    assert!(unrunnable(&p, &l));
}

// --- Engine-layer wiring ----------------------------------------------

#[test]
fn engine_strict_mode_accepts_paper_models_and_exposes_the_report() {
    let engine = Engine::builder()
        .ernet(ErNetSpec::new(ErNetTask::Dn, 3, 1, 0))
        .block(64)
        .verify(VerifyMode::Strict)
        .build()
        .unwrap();
    let report = engine
        .verify_report()
        .expect("strict mode keeps the report");
    assert!(report.is_clean());
    assert_eq!(
        report.ranges.len(),
        engine.compiled().program.instructions.len()
    );
}

#[test]
fn engine_off_mode_skips_verification() {
    let engine = Engine::builder()
        .ernet(ErNetSpec::new(ErNetTask::Dn, 3, 1, 0))
        .block(64)
        .verify(VerifyMode::Off)
        .build()
        .unwrap();
    assert!(engine.verify_report().is_none());
}

#[test]
fn engine_strict_mode_rejects_linted_programs() {
    // An all-zero model is legal but every leaf trips the zero-taps lint:
    // Lints mode builds, Strict mode refuses.
    let m = ErNetSpec::new(ErNetTask::Dn, 1, 1, 0).build().unwrap();
    let mut qm = QuantizedModel::uniform(&m);
    for p in qm.layers.iter_mut().flatten() {
        p.w3.iter_mut().for_each(|w| *w = 0);
        p.w1.iter_mut().for_each(|w| *w = 0);
    }
    let c = compile(&qm, 64).unwrap();
    let report = verify_compiled(&c);
    assert!(!report.has_errors());
    assert!(!report.passes(VerifyMode::Strict));
    assert!(report.passes(VerifyMode::Lints));
}

// --- Soundness: observed extrema within predicted intervals -----------

/// Overwrites every parameter with seeded pseudo-random codes in
/// `[-8, 8]`, zeroing roughly `sparsity_pct`% (as in kernel_parity.rs).
fn scramble(qm: &mut QuantizedModel, seed: u64, sparsity_pct: u64) {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as i64
    };
    for p in qm.layers.iter_mut().flatten() {
        for w in
            p.w3.iter_mut()
                .chain(p.w1.iter_mut())
                .chain(p.b3.iter_mut())
                .chain(p.b1.iter_mut())
        {
            let r = next();
            *w = if r.unsigned_abs() % 100 < sparsity_pct {
                0
            } else {
                (r.rem_euclid(17) - 8) as i16
            };
        }
    }
}

fn image_kind(sel: u64) -> ImageKind {
    match sel % 4 {
        0 => ImageKind::Smooth,
        1 => ImageKind::Edges,
        2 => ImageKind::Texture,
        _ => ImageKind::Mixed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Verifier-admitted random ERNets execute cleanly and the traced
    /// reference executor's per-instruction accumulator/store extrema
    /// stay inside the statically predicted intervals.
    #[test]
    fn traced_extrema_within_predicted_ranges(
        seed in 0u64..1_000_000,
        b in 1usize..4,
        r in 1usize..3,
        sel in 0usize..4,
        sparsity in 0u64..70,
    ) {
        let task = match sel {
            0 => ErNetTask::Dn,
            1 => ErNetTask::Sr2,
            2 => ErNetTask::Sr4,
            _ => ErNetTask::Dn12,
        };
        let n = if b > 1 { 1 } else { 0 };
        let m = ErNetSpec::new(task, b, r, n).build().unwrap();
        let mut qm = QuantizedModel::uniform(&m);
        scramble(&mut qm, seed, sparsity);
        let side = if task == ErNetTask::Dn12 { 48 } else { 32 };
        let c = compile(&qm, side).unwrap();

        let report = verify_compiled(&c);
        prop_assert!(!report.has_errors(),
            "verifier rejected a compiled program: {:?}", report.diagnostics);
        prop_assert!(report.ranges.iter().all(Option::is_some));

        let img = SyntheticImage::new(image_kind(seed), seed % 89).rgb(side, side);
        let input = quantize_input(&img, &c.program);
        let plan = BlockPlan::new(&c.program, &c.leafs).unwrap();
        let mut pool = PlanePool::new();
        let (_, trace) = execute_traced(&plan, &mut pool, &input).unwrap();
        if let Some((i, stage, observed, predicted)) = trace.check_against(&report) {
            prop_assert!(false,
                "instr {i} {stage}: observed {observed:?} outside predicted {predicted:?}");
        }
        // The plan cross-check agrees with the verifier's plane table.
        prop_assert!(crosscheck_plan(&plan, &report).is_empty());
    }

    /// The DI-plane channel pinning is sound: images with extreme values
    /// (all-max input) stay within range too.
    #[test]
    fn extreme_inputs_stay_within_predicted_ranges(sel in 0usize..3, b in 1usize..3) {
        let task = [ErNetTask::Dn, ErNetTask::Sr2, ErNetTask::Dn12][sel];
        let m = ErNetSpec::new(task, b, 1, 0).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        let side = if task == ErNetTask::Dn12 { 48 } else { 32 };
        let c = compile(&qm, side).unwrap();
        let report = verify_compiled(&c);
        prop_assert!(!report.has_errors());
        let max = c.program.di_q.max_code() as i16;
        let input = Tensor::<i16>::from_fn(
            c.program.di_channels, side, side, |_, _, _| max);
        let plan = BlockPlan::new(&c.program, &c.leafs).unwrap();
        let mut pool = PlanePool::new();
        let (_, trace) = execute_traced(&plan, &mut pool, &input).unwrap();
        prop_assert!(trace.check_against(&report).is_none());
    }
}

// --- Sanity: constants referenced above exist as expected -------------

#[test]
fn leaf_channel_constant_matches_plane_width() {
    let (p, l) = single_conv();
    let report = verify(&p, &l);
    // DI group plane plus the written DO plane, both LEAF_CH wide.
    assert_eq!(report.planes.len(), 2);
    assert!(report.planes.iter().all(|pl| pl.channels == LEAF_CH));
}
